"""Unit tests for repro.analysis.metrics."""

import numpy as np
import pytest

from repro.analysis import compute_metrics, format_metrics
from repro.core import (
    Assignment,
    ClusteredGraph,
    Clustering,
    TaskGraph,
    evaluate_assignment,
)
from repro.topology import SystemGraph, chain, complete
from tests.conftest import random_instance


def _schedule(clustered, system, seed=0):
    return evaluate_assignment(
        clustered, system, Assignment.random(system.num_nodes, rng=seed)
    )


class TestMetrics:
    def test_hand_checked_values(self, diamond_clustered):
        schedule = evaluate_assignment(
            diamond_clustered, complete(4), Assignment.identity(4)
        )
        m = compute_metrics(schedule)
        assert m.makespan == 10
        assert m.total_work == 8
        assert m.speedup == pytest.approx(0.8)
        assert m.efficiency == pytest.approx(0.2)
        assert m.comm_volume == 6  # all edges at distance 1
        assert m.stretched_edges == 0

    def test_stretched_edges_counted(self, diamond_clustered):
        schedule = evaluate_assignment(
            diamond_clustered, chain(4), Assignment.identity(4)
        )
        m = compute_metrics(schedule)
        # (0,2) and (1,3) span two hops on the chain under identity.
        assert m.stretched_edges == 2
        assert m.comm_volume > diamond_clustered.graph.total_comm

    def test_single_processor_degenerate(self):
        g = TaskGraph([4, 4])
        cg = ClusteredGraph(g, Clustering([0, 0]))
        system = SystemGraph(np.zeros((1, 1), dtype=int))
        m = compute_metrics(evaluate_assignment(cg, system, Assignment.identity(1)))
        # The paper's model overlaps independent same-cluster tasks.
        assert m.makespan == 4
        assert m.speedup == pytest.approx(2.0)
        assert m.load_imbalance == pytest.approx(0.0)
        assert m.comm_volume == 0

    def test_utilization_bounds(self):
        for seed in range(5):
            clustered, system = random_instance(seed)
            m = compute_metrics(_schedule(clustered, system, seed))
            assert 0.0 < m.avg_utilization <= clustered.num_tasks
            assert m.load_imbalance >= 0.0
            assert m.comm_to_comp >= 0.0

    def test_format(self, diamond_clustered):
        schedule = evaluate_assignment(
            diamond_clustered, complete(4), Assignment.identity(4)
        )
        text = format_metrics(compute_metrics(schedule))
        assert "makespan          : 10" in text
        assert "speedup" in text

    def test_format_appends_extra_metric_lines(self, diamond_clustered):
        """Regression: requested registry metrics used to be dropped from
        the report; they must appear as aligned lines after the built-ins."""
        schedule = evaluate_assignment(
            diamond_clustered, complete(4), Assignment.identity(4)
        )
        m = compute_metrics(schedule)
        text = format_metrics(m, extra={"sim_makespan": 12.0, "hop_bytes": 6.0})
        lines = text.splitlines()
        assert lines[-2] == "hop_bytes         : 6"
        assert lines[-1] == "sim_makespan      : 12"
        assert format_metrics(m, extra={}) == format_metrics(m)
