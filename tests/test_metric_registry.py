"""Tests for the repro.metrics subsystem: the fifth registry axis.

Covers the registry itself, the analytic and simulator-backed metrics,
the scenario / sweep / service plumbing, and the metric-parameterized
multilevel refinement.  The tie-breaking regression test at the bottom
pins the ISSUE's acceptance criterion: a sweep pair that the paper's
comm-volume objective cannot separate but ``max_congestion`` /
``sim_makespan`` can.
"""

import json

import numpy as np
import pytest

from repro.api import (
    Scenario,
    registry_listing,
    run_scenario_once,
    run_scenarios,
    summarize_sweep,
)
from repro.api.scenario import ScenarioError, expand_spec
from repro.api.sweep import format_sweep
from repro.core import Assignment, ClusteredGraph, Clustering, TaskGraph
from repro.core.evaluate import evaluate_assignment
from repro.metrics import (
    METRICS,
    DuplicateMetricError,
    UnknownMetricError,
    available_metrics,
    build_metrics,
    evaluate_metrics,
    get_metric,
    link_traffic,
    metric_label,
    normalize_metric_specs,
    processor_traffic_matrix,
    task_hosts,
)
from repro.sim import SimConfig, simulate
from repro.topology import SystemGraph, chain, hypercube
from repro.utils import MappingError
from tests.conftest import random_instance

ANALYTIC = ["avg_dilation", "comm_volume", "hop_bytes", "max_congestion"]
SIMULATED = ["sim_fifo_stall_time", "sim_makespan", "sim_max_link_utilization"]


class TestRegistry:
    def test_available_names(self):
        assert available_metrics() == sorted(ANALYTIC + SIMULATED)

    def test_analytic_flag_partitions_the_registry(self):
        for name in ANALYTIC:
            assert get_metric(name).analytic
        for name in SIMULATED:
            assert not get_metric(name).analytic

    def test_unknown_name_suggests(self):
        with pytest.raises(UnknownMetricError, match="did you mean 'hop_bytes'"):
            get_metric("hop_byte")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DuplicateMetricError):
            METRICS.register("comm_volume")(object)

    def test_listing_matches_other_axes_shape(self):
        listing = registry_listing("metrics")
        assert listing == {
            "kind": "metrics",
            "count": len(available_metrics()),
            "names": available_metrics(),
        }

    def test_metric_label(self):
        assert metric_label("hop_bytes") == "hop_bytes"
        assert (
            metric_label("sim_makespan", {"link_setup": 2, "fifo_depth": 1})
            == "sim_makespan[fifo_depth=1,link_setup=2]"
        )

    def test_normalize_specs_accepts_all_three_shapes(self):
        specs = normalize_metric_specs(
            [
                "hop_bytes",
                {"name": "sim_makespan", "params": {"link_setup": 2}},
                ("max_congestion", {}),
            ]
        )
        assert specs == [
            ("hop_bytes", {}),
            ("sim_makespan", {"link_setup": 2}),
            ("max_congestion", {}),
        ]

    def test_normalize_specs_rejects_duplicates_and_unknowns(self):
        with pytest.raises(MappingError, match="duplicate metric"):
            normalize_metric_specs(["hop_bytes", "hop_bytes"])
        with pytest.raises(MappingError, match="did you mean"):
            normalize_metric_specs(["comm_volum"])

    def test_build_metrics_wraps_bad_params(self):
        with pytest.raises(MappingError):
            build_metrics([("sim_makespan", {"bogus_knob": 1})])


class TestAnalyticMetrics:
    def test_comm_volume_matches_schedule(self):
        for seed in range(4):
            clustered, system = random_instance(seed)
            a = Assignment.random(system.num_nodes, rng=seed)
            values = evaluate_metrics(clustered, system, a, ["comm_volume"])
            sched = evaluate_assignment(clustered, system, a)
            assert values["comm_volume"] == float(sched.comm.sum())

    def test_hop_bytes_equals_comm_volume_on_unit_links(self):
        clustered, system = random_instance(1)
        a = Assignment.random(system.num_nodes, rng=1)
        values = evaluate_metrics(clustered, system, a, ["comm_volume", "hop_bytes"])
        assert values["hop_bytes"] == values["comm_volume"]

    def test_hop_bytes_differs_from_comm_volume_on_weighted_links(self):
        # Two processors joined by a weight-3 link: comm_volume pays the
        # weighted distance, hop_bytes counts one hop.
        system = SystemGraph(
            np.array([[0, 1], [1, 0]]), link_weights=np.array([[0, 3], [3, 0]])
        )
        g = TaskGraph([1, 1], [(0, 1, 5)])
        clustered = ClusteredGraph(g, Clustering([0, 1]))
        a = Assignment.identity(2)
        values = evaluate_metrics(clustered, system, a, ["comm_volume", "hop_bytes"])
        assert values["comm_volume"] == 15.0
        assert values["hop_bytes"] == 5.0

    def test_link_traffic_totals_hop_bytes(self):
        clustered, system = random_instance(2)
        a = Assignment.random(system.num_nodes, rng=2)
        loads = link_traffic(clustered, system, a)
        values = evaluate_metrics(
            clustered, system, a, ["hop_bytes", "max_congestion"]
        )
        assert sum(loads.values()) == values["hop_bytes"]
        assert max(loads.values()) == values["max_congestion"]

    def test_link_traffic_equals_sim_busy_time(self):
        """The analytic congestion model uses the simulator's own routes."""
        clustered, system = random_instance(3)
        a = Assignment.random(system.num_nodes, rng=3)
        loads = link_traffic(clustered, system, a)
        sim = simulate(clustered, system, a, SimConfig(link_contention=True))
        assert loads == sim.trace.link_busy_time()

    def test_traffic_matrix_zero_diagonal_and_totals(self):
        clustered, system = random_instance(4)
        a = Assignment.random(system.num_nodes, rng=4)
        traffic = processor_traffic_matrix(clustered, system, a)
        assert np.all(np.diag(traffic) == 0)
        host = task_hosts(clustered, system, a)
        cross = clustered.clus_edge[
            host[:, None] != host[None, :]
        ].sum()
        assert traffic.sum() == cross

    def test_avg_dilation_bounds(self):
        clustered, system = random_instance(5)
        a = Assignment.random(system.num_nodes, rng=5)
        values = evaluate_metrics(clustered, system, a, ["avg_dilation"])
        assert 1.0 <= values["avg_dilation"] <= float(system.shortest.max())

    def test_no_cross_traffic_degenerates_to_zero(self):
        g = TaskGraph([2, 3], [(0, 1, 4)])
        clustered = ClusteredGraph(g, Clustering([0, 0]))
        system = chain(1)
        a = Assignment.identity(1)
        values = evaluate_metrics(
            clustered, system, a, ["max_congestion", "avg_dilation", "hop_bytes"]
        )
        assert values == {
            "max_congestion": 0.0,
            "avg_dilation": 0.0,
            "hop_bytes": 0.0,
        }

    def test_mismatched_triple_rejected(self):
        clustered, _ = random_instance(0)
        with pytest.raises(MappingError, match="clusters"):
            task_hosts(clustered, hypercube(2), Assignment.identity(4))


class TestSimulatedMetrics:
    def test_sim_makespan_dominates_analytic(self):
        clustered, system = random_instance(6)
        a = Assignment.random(system.num_nodes, rng=6)
        sched = evaluate_assignment(clustered, system, a)
        values = evaluate_metrics(clustered, system, a, SIMULATED)
        assert values["sim_makespan"] >= sched.total_time
        assert 0.0 <= values["sim_max_link_utilization"] <= 1.0
        assert values["sim_fifo_stall_time"] >= 0.0

    def test_params_reach_the_simulator(self):
        clustered, system = random_instance(7)
        a = Assignment.random(system.num_nodes, rng=7)
        base = evaluate_metrics(clustered, system, a, ["sim_makespan"])
        slow = evaluate_metrics(
            clustered, system, a, [("sim_makespan", {"link_setup": 5})]
        )
        assert slow["sim_makespan"] > base["sim_makespan"]

    def test_shared_memo_runs_one_simulation(self, monkeypatch):
        import repro.metrics.simulated as simulated

        calls = []
        real = simulated.simulate

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(simulated, "simulate", counting)
        clustered, system = random_instance(8)
        a = Assignment.random(system.num_nodes, rng=8)
        evaluate_metrics(
            clustered, system, a, ["sim_makespan", "sim_max_link_utilization"]
        )
        assert len(calls) == 1  # identical SimConfig -> one shared run


#: family -> smallest representative spec; the assertion in
#: test_every_topology_family_covered keeps this in sync with the registry.
TOPOLOGY_SPECS = {
    "btree": "btree:3",
    "butterfly": "butterfly:2",
    "ccc": "ccc:3",
    "chain": "chain:8",
    "chordal": "chordal:8x3",
    "complete": "complete:8",
    "debruijn": "debruijn:3",
    "hypercube": "hypercube:3",
    "kautz": "kautz:2x2",
    "kbipartite": "kbipartite:3x3",
    "mesh": "mesh:8",
    "mesh2d": "mesh2d:2x4",
    "mesh3d": "mesh3d:2x2x2",
    "petersen": "petersen",
    "random": "random:8",
    "regular": "regular:8x3",
    "ring": "ring:8",
    "star": "star:8",
    "torus": "torus:8",
    "torus2d": "torus2d:2x4",
    "torus3d": "torus3d:2x2x2",
}

RELAXATIONS = [
    {},
    {"serialize_processors": True},
    {"link_contention": True},
    {"serialize_processors": True, "link_contention": True},
    {"serialize_processors": True, "link_contention": True, "link_setup": 2},
    {"serialize_processors": True, "link_contention": True, "fifo_depth": 1},
]


class TestSimDominanceProperty:
    def test_every_topology_family_covered(self):
        from repro.api import available_topologies

        assert sorted(TOPOLOGY_SPECS) == available_topologies()

    @pytest.mark.parametrize("spec", sorted(TOPOLOGY_SPECS.values()))
    def test_sim_dominates_analytic_everywhere(self, spec):
        """ISSUE property: on every registered topology family, under
        every relaxation combination, the simulated makespan is bounded
        below by the paper's analytic total time — and metric evaluation
        is deterministic."""
        from repro.api import build_topology
        from repro.clustering import RandomClusterer
        from repro.workloads import layered_random_dag

        system = build_topology(spec, rng=0)
        ns = system.num_nodes
        graph = layered_random_dag(num_tasks=3 * ns, rng=41)
        clustering = RandomClusterer(num_clusters=ns).cluster(graph, rng=41)
        clustered = ClusteredGraph(graph, clustering)
        a = Assignment.random(ns, rng=41)
        analytic = evaluate_assignment(clustered, system, a).total_time
        for kwargs in RELAXATIONS:
            sim = simulate(clustered, system, a, SimConfig(**kwargs))
            assert sim.makespan >= analytic, (spec, kwargs)
        first = evaluate_metrics(clustered, system, a, available_metrics())
        second = evaluate_metrics(clustered, system, a, available_metrics())
        assert first == second


class TestScenarioMetricsAxis:
    SPECS = ["hop_bytes", "max_congestion", "sim_makespan"]

    def scenario(self, **over):
        base = dict(
            workload="layered_random",
            workload_params={"num_tasks": 16},
            topology="hypercube:2",
            mapper="critical",
            seed=3,
            metrics=self.SPECS,
        )
        base.update(over)
        return Scenario(**base)

    def test_key_gains_metrics_segment(self):
        s = self.scenario()
        assert "/metrics=hop_bytes,max_congestion,sim_makespan/seed=3" in s.key()

    def test_metricless_key_is_the_historical_key(self):
        s = self.scenario(metrics=())
        assert s.key() == (
            "workload=layered_random[num_tasks=16]/clustering=random/"
            "topology=hypercube:2/mapper=critical/seed=3"
        )
        assert "metrics" not in s.to_dict()

    def test_params_render_in_key(self):
        s = self.scenario(metrics=[("sim_makespan", {"link_setup": 2})])
        assert "metrics=sim_makespan[link_setup=2]" in s.key()

    def test_dict_round_trip(self):
        s = self.scenario(metrics=["hop_bytes", ("sim_makespan", {"fifo_depth": 2})])
        data = s.to_dict()
        assert data["metrics"] == [
            "hop_bytes",
            {"name": "sim_makespan", "params": {"fifo_depth": 2}},
        ]
        assert Scenario.from_dict(json.loads(json.dumps(data))) == s

    def test_bare_string_rejected(self):
        with pytest.raises(ScenarioError, match="wrap it in a list"):
            self.scenario(metrics="hop_bytes")

    def test_unknown_metric_names_axis(self):
        with pytest.raises(
            ScenarioError, match="scenario axis 'metrics'.*did you mean"
        ):
            self.scenario(metrics=["hop_byte"])

    def test_bad_params_rejected_eagerly(self):
        with pytest.raises(ScenarioError, match="scenario axis 'metrics'"):
            self.scenario(metrics=[("sim_makespan", {"nope": 1})])

    def test_grid_applies_metrics_to_every_scenario(self):
        scenarios = Scenario.grid(
            workload={"name": "layered_random", "params": {"num_tasks": 16}},
            topology=["hypercube:2", "ring:4"],
            mapper=["critical", "random"],
            metrics=["hop_bytes"],
        )
        assert len(scenarios) == 4
        assert all(s.metrics == (("hop_bytes", {}),) for s in scenarios)

    def test_expand_spec_top_level_metrics(self):
        scenarios = expand_spec(
            {
                "grid": {
                    "workload": {
                        "name": "layered_random",
                        "params": {"num_tasks": 16},
                    },
                    "topology": "hypercube:2",
                },
                "metrics": ["hop_bytes", "max_congestion"],
            }
        )
        assert scenarios[0].metrics == (("hop_bytes", {}), ("max_congestion", {}))

    def test_run_scenario_once_populates_outcome(self):
        outcome = run_scenario_once(self.scenario(), 0)
        assert sorted(outcome.metrics) == sorted(self.SPECS)
        assert outcome.metrics["sim_makespan"] >= outcome.total_time

    def test_metricless_outcome_stays_empty(self):
        outcome = run_scenario_once(self.scenario(metrics=()), 0)
        assert outcome.metrics == {}


class TestSweepMetrics:
    def scenarios(self):
        return Scenario.grid(
            workload={"name": "layered_random", "params": {"num_tasks": 16}},
            topology="hypercube:2",
            mapper=["critical", "random"],
            seed=5,
            metrics=["hop_bytes", "max_congestion"],
        )

    def test_records_summary_and_table(self):
        result = run_scenarios(self.scenarios())
        for record in result.records:
            assert sorted(record["outcome"]["metrics"]) == [
                "hop_bytes",
                "max_congestion",
            ]
        for _group, rows in summarize_sweep(result.records):
            for row in rows:
                assert set(row["metrics"]) == {"hop_bytes", "max_congestion"}
        table = format_sweep(result.records)
        assert "hop_bytes" in table and "max_congestion" in table

    def test_resume_replays_metrics_from_checkpoint(self, tmp_path):
        out = tmp_path / "results.jsonl"
        first = run_scenarios(self.scenarios(), out=out)
        assert first.executed == 2
        second = run_scenarios(self.scenarios(), out=out)
        assert second.executed == 0 and second.reused == 2
        assert [r["outcome"]["metrics"] for r in second.records] == [
            r["outcome"]["metrics"] for r in first.records
        ]


class TestServiceMetrics:
    def test_store_round_trip(self):
        from repro.service import outcome_from_dict, outcome_to_dict

        outcome = run_scenario_once(
            Scenario(
                workload="layered_random",
                workload_params={"num_tasks": 16},
                topology="hypercube:2",
                seed=1,
                metrics=["hop_bytes", "sim_makespan"],
            ),
            0,
        )
        data = outcome_to_dict(outcome)
        assert data["metrics"] == outcome.metrics
        assert outcome_to_dict(outcome_from_dict(data)) == data

    def test_metricless_outcome_dict_is_historical(self):
        from repro.service import outcome_to_dict

        outcome = run_scenario_once(
            Scenario(
                workload="layered_random",
                workload_params={"num_tasks": 16},
                topology="hypercube:2",
                seed=1,
            ),
            0,
        )
        assert "metrics" not in outcome_to_dict(outcome)

    def test_fingerprint_distinguishes_metric_requests(self):
        from repro.service import scenario_fingerprint

        plain = Scenario(
            workload="layered_random",
            workload_params={"num_tasks": 16},
            topology="hypercube:2",
            seed=1,
        )
        scored = Scenario(
            workload="layered_random",
            workload_params={"num_tasks": 16},
            topology="hypercube:2",
            seed=1,
            metrics=["hop_bytes"],
        )
        assert scenario_fingerprint(plain) != scenario_fingerprint(scored)

    def test_cached_scenario_job_replays_metrics(self):
        from repro.service import MappingService, outcome_to_dict

        scenario = Scenario(
            workload="layered_random",
            workload_params={"num_tasks": 16},
            topology="hypercube:2",
            seed=9,
            metrics=["hop_bytes", "sim_makespan"],
        )
        with MappingService(max_workers=2) as svc:
            job = svc.submit_scenario(scenario)
            outcome = job.result(timeout=60)
            assert sorted(outcome.metrics) == ["hop_bytes", "sim_makespan"]
            again = svc.submit_scenario(scenario)
            assert again.cached
            assert outcome_to_dict(again.result()) == outcome_to_dict(outcome)


class TestRefineMetric:
    def _level(self, seed=13, ns=8):
        from repro.clustering import RandomClusterer
        from repro.workloads import layered_random_dag

        system = hypercube(3)
        graph = layered_random_dag(num_tasks=ns, rng=seed)
        return graph, system

    def test_default_is_bit_identical_to_refine_comm_volume(self):
        from repro.core.multilevel import refine_comm_volume, refine_metric

        graph, system = self._level()
        a = Assignment.random(system.num_nodes, rng=13)
        legacy = refine_comm_volume(graph, system, a, passes=4)
        general = refine_metric(graph, system, a, passes=4, metric="comm_volume")
        assert np.array_equal(legacy[0].assi, general[0].assi)
        assert legacy[1:] == (int(general[1]),) + general[2:]

    @pytest.mark.parametrize("metric", ["hop_bytes", "max_congestion"])
    def test_refinement_never_worsens_the_metric(self, metric):
        from repro.core.multilevel import refine_metric

        graph, system = self._level()
        clustered = ClusteredGraph(
            graph, Clustering(list(range(graph.num_tasks)))
        )
        a = Assignment.random(system.num_nodes, rng=13)
        before = evaluate_metrics(clustered, system, a, [metric])[metric]
        refined, value, probes, swaps = refine_metric(
            graph, system, a, passes=4, metric=metric
        )
        after = evaluate_metrics(clustered, system, refined, [metric])[metric]
        assert value == after <= before
        assert probes >= 0 and swaps >= 0

    def test_simulated_objective_rejected(self):
        from repro.core.multilevel import refine_metric

        graph, system = self._level()
        a = Assignment.random(system.num_nodes, rng=13)
        with pytest.raises(MappingError, match="analytic"):
            refine_metric(graph, system, a, passes=1, metric="sim_makespan")

    def test_multilevel_map_accepts_refine_metric(self):
        from repro.core.multilevel import (
            abstract_taskgraph,
            identity_clustering,
            multilevel_map,
        )

        clustered, system = random_instance(14)

        def initial(cg, sys_, rng):
            return Assignment.random(sys_.num_nodes, rng=14)

        result = multilevel_map(
            clustered, system, initial, refine_metric="hop_bytes", rng=14
        )
        level = ClusteredGraph(
            abstract_taskgraph(clustered),
            identity_clustering(clustered.num_clusters),
        )
        got = evaluate_metrics(level, system, result.assignment, ["hop_bytes"])
        assert result.comm_volume == got["hop_bytes"]

    def test_adapter_extras_contract(self):
        from repro.api import solve_instance

        clustered, system = random_instance(15)
        default = solve_instance(clustered, system, mapper="multilevel", rng=15)
        assert "comm_volume" in default.extras
        assert default.extras["refine_objective"] == default.extras["comm_volume"]
        scored = solve_instance(
            clustered,
            system,
            mapper="multilevel",
            rng=15,
            refine_metric="max_congestion",
        )
        assert "comm_volume" not in scored.extras
        assert "refine_objective" in scored.extras

    def test_adapter_rejects_simulated_objective(self):
        from repro.api import solve_instance

        clustered, system = random_instance(16)
        with pytest.raises(MappingError, match="analytic"):
            solve_instance(
                clustered,
                system,
                mapper="multilevel",
                rng=16,
                refine_metric="sim_makespan",
            )


class TestDeltaMetricMatrix:
    def test_metric_matrix_must_be_symmetric_and_sized(self):
        from repro.core.incremental import CommVolumeDelta

        _, system = random_instance(0)
        ns = system.num_nodes
        weights = np.zeros((ns, ns), dtype=np.int64)
        a = Assignment.identity(ns)
        with pytest.raises(MappingError):
            CommVolumeDelta(
                weights, system, a, metric=np.zeros((ns - 1, ns - 1))
            )
        skew = np.triu(np.ones((ns, ns)))
        with pytest.raises(MappingError):
            CommVolumeDelta(weights, system, a, metric=skew)

    def test_default_matrix_matches_shortest_paths(self):
        from repro.core.incremental import CommVolumeDelta

        clustered, system = random_instance(1)
        sym = clustered.clus_edge + clustered.clus_edge.T
        # Aggregate over clusters: build the na x na symmetric weights.
        labels = clustered.clustering.labels
        na = clustered.num_clusters
        agg = np.zeros((na, na), dtype=np.int64)
        np.add.at(agg, (labels[:, None], labels[None, :]), sym)
        np.fill_diagonal(agg, 0)
        a = Assignment.random(system.num_nodes, rng=1)
        base = CommVolumeDelta(agg, system, a)
        explicit = CommVolumeDelta(agg, system, a, metric=system.shortest)
        assert base.volume == explicit.volume
        for c, d in [(0, 1), (2, 5), (3, 4)]:
            assert base.delta_swap(c, d) == explicit.delta_swap(c, d)


class TestAcceptanceTie:
    def test_congestion_separates_a_comm_volume_tie(self):
        """ISSUE acceptance: in a 2-mapper x 2-topology sweep, at least
        one recorded pair ties on comm_volume yet is separated by
        max_congestion or sim_makespan.  The grid and seed are pinned;
        the tie was found empirically and must not silently vanish."""
        scenarios = Scenario.grid(
            workload={"name": "layered_random", "params": {"num_tasks": 24}},
            topology=["hypercube:3", "mesh2d:2x4"],
            mapper=["critical", "random"],
            seed=2,
            metrics=["comm_volume", "hop_bytes", "max_congestion", "sim_makespan"],
        )
        result = run_scenarios(scenarios)
        assert len(result.records) == 4
        values = [r["outcome"]["metrics"] for r in result.records]
        separated = [
            (a, b)
            for i, a in enumerate(values)
            for b in values[i + 1 :]
            if a["comm_volume"] == b["comm_volume"]
            and (
                a["max_congestion"] != b["max_congestion"]
                or a["sim_makespan"] != b["sim_makespan"]
            )
        ]
        assert separated, values
