"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_args(self):
        args = build_parser().parse_args(["table1", "--seed", "7", "--rows", "2"])
        assert args.command == "table1"
        assert args.seed == 7
        assert args.rows == 2

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tableau"])


class TestCommands:
    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "ALL MILESTONES PASS             : True" in out

    def test_matrices(self, capsys):
        assert main(["matrices"]) == 0
        out = capsys.readouterr().out
        assert "prob_edge (Fig. 18)" in out
        assert "assi (Fig. 23-b)" in out

    def test_counterexamples(self, capsys):
        assert main(["counterexamples"]) == 0
        out = capsys.readouterr().out
        assert out.count("phenomenon HOLDS") == 2

    def test_table_small(self, capsys):
        assert main(["table1", "--seed", "1", "--rows", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Fig. 25" in out

    def test_table_no_figure(self, capsys):
        assert main(["table2", "--seed", "1", "--rows", "2", "--no-figure"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Fig. 26" not in out

    def test_map_command(self, capsys):
        assert (
            main(
                [
                    "map", "--tasks", "30", "--topology", "ring", "--size", "5",
                    "--seed", "3", "--clusterer", "band", "--gantt",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "lower bound:" in out
        assert "speedup" in out
        assert "time |" in out  # the gantt chart

    def test_map_with_mapper(self, capsys):
        assert (
            main(
                [
                    "map", "--tasks", "24", "--topology", "ring", "--size", "4",
                    "--seed", "3", "--mapper", "tabu",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mapper     : tabu" in out
        assert "lower bound:" in out
        assert "speedup" in out

    def test_map_bad_clusterer(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["map", "--clusterer", "magic"])

    def test_map_bad_mapper(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["map", "--mapper", "magic"])

    def test_compare(self, capsys):
        assert (
            main(
                [
                    "compare", "--tasks", "24", "--topology", "ring", "--size", "4",
                    "--seed", "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Mapper comparison (lower bound =" in out
        from repro.api import available_mappers

        for name in available_mappers():
            assert name in out

    def test_compare_subset(self, capsys):
        assert (
            main(
                [
                    "compare", "--tasks", "24", "--topology", "ring", "--size", "4",
                    "--seed", "3", "--mappers", "critical,random",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "critical" in out
        assert "tabu" not in out

    def test_sensitivity_parses(self):
        args = build_parser().parse_args(["sensitivity", "--seed", "2"])
        assert args.command == "sensitivity"
        assert args.seed == 2
