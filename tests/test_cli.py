"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_args(self):
        args = build_parser().parse_args(["table1", "--seed", "7", "--rows", "2"])
        assert args.command == "table1"
        assert args.seed == 7
        assert args.rows == 2

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tableau"])


class TestCommands:
    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "ALL MILESTONES PASS             : True" in out

    def test_matrices(self, capsys):
        assert main(["matrices"]) == 0
        out = capsys.readouterr().out
        assert "prob_edge (Fig. 18)" in out
        assert "assi (Fig. 23-b)" in out

    def test_counterexamples(self, capsys):
        assert main(["counterexamples"]) == 0
        out = capsys.readouterr().out
        assert out.count("phenomenon HOLDS") == 2

    def test_table_small(self, capsys):
        assert main(["table1", "--seed", "1", "--rows", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Fig. 25" in out

    def test_table_no_figure(self, capsys):
        assert main(["table2", "--seed", "1", "--rows", "2", "--no-figure"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Fig. 26" not in out

    def test_map_command(self, capsys):
        assert (
            main(
                [
                    "map", "--tasks", "30", "--topology", "ring", "--size", "5",
                    "--seed", "3", "--clusterer", "band", "--gantt",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "lower bound:" in out
        assert "speedup" in out
        assert "time |" in out  # the gantt chart

    def test_map_with_mapper(self, capsys):
        assert (
            main(
                [
                    "map", "--tasks", "24", "--topology", "ring", "--size", "4",
                    "--seed", "3", "--mapper", "tabu",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mapper     : tabu" in out
        assert "lower bound:" in out
        assert "speedup" in out

    def test_map_bad_clusterer(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["map", "--clusterer", "magic"])

    def test_map_bad_mapper(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["map", "--mapper", "magic"])

    def test_compare(self, capsys):
        assert (
            main(
                [
                    "compare", "--tasks", "24", "--topology", "ring", "--size", "4",
                    "--seed", "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Mapper comparison (lower bound =" in out
        from repro.api import available_mappers

        for name in available_mappers():
            assert name in out

    def test_compare_subset(self, capsys):
        assert (
            main(
                [
                    "compare", "--tasks", "24", "--topology", "ring", "--size", "4",
                    "--seed", "3", "--mappers", "critical,random",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "critical" in out
        assert "tabu" not in out

    def test_sensitivity_parses(self):
        args = build_parser().parse_args(["sensitivity", "--seed", "2"])
        assert args.command == "sensitivity"
        assert args.seed == 2


class TestErrorPaths:
    """Bad input exits with code 2 and a one-line message, never a traceback."""

    def _expect_exit2(self, argv, capsys, fragment):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert fragment in err
        assert err.strip().count("\n") == 0  # a single diagnostic line
        assert err.startswith(f"mimdmap {argv[0]}: error:")

    def test_map_missing_input_file(self, capsys):
        self._expect_exit2(
            ["map", "--input", "/no/such/file.json"], capsys, "cannot read input file"
        )

    def test_map_unreadable_input_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("this is not json")
        self._expect_exit2(
            ["map", "--input", str(bad)], capsys, "not a valid instance"
        )

    def test_map_wrong_kind_input_file(self, capsys, tmp_path):
        bad = tmp_path / "graph-only.json"
        bad.write_text('{"version": 1, "kind": "task_graph"}')
        self._expect_exit2(
            ["map", "--input", str(bad)], capsys, "not a valid instance"
        )

    @pytest.mark.parametrize("size", ["0", "-4"])
    def test_map_out_of_range_processor_count(self, capsys, size):
        self._expect_exit2(["map", "--size", size], capsys, "must be >= 1")

    @pytest.mark.parametrize("size", ["0", "-1"])
    def test_compare_out_of_range_processor_count(self, capsys, size):
        self._expect_exit2(["compare", "--size", size], capsys, "must be >= 1")

    def test_map_out_of_range_tasks(self, capsys):
        self._expect_exit2(["map", "--tasks", "0"], capsys, "--tasks")

    def test_map_invalid_topology_size(self, capsys):
        self._expect_exit2(
            ["map", "--topology", "hypercube", "--size", "7"],
            capsys,
            "power of two",
        )

    def test_compare_unknown_mapper_exits_2(self, capsys):
        self._expect_exit2(
            ["compare", "--mappers", "magic"], capsys, "unknown mapper"
        )

    def test_compare_bad_workers_exits_2(self, capsys):
        self._expect_exit2(["compare", "--workers", "0"], capsys, "--workers")

    def test_map_from_instance_file(self, capsys, tmp_path):
        from repro.io import save_instance
        from repro.topology import ring
        from repro.workloads import layered_random_dag

        path = tmp_path / "instance.json"
        save_instance(path, layered_random_dag(num_tasks=20, rng=0), ring(4))
        assert main(["map", "--input", str(path), "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "ring-4" in out
        assert "lower bound:" in out


class TestSweepAndList:
    """The `sweep` and `list` subcommands (the scenario-grid front end)."""

    SPEC = {
        "grid": {
            "workload": {"name": "fft", "params": {"points_log2": 2}},
            "topology": ["hypercube:2", "mesh2d:2x2"],
            "mapper": ["critical", {"name": "random", "params": {"samples": 3}}],
        },
        "seed": 5,
    }

    def _write_spec(self, tmp_path, spec=None):
        import json

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec or self.SPEC))
        return path

    @pytest.mark.parametrize(
        "axis, expect",
        [
            ("mappers", "critical"),
            ("clusterers", "dsc"),
            ("workloads", "layered_random"),
            ("topologies", "torus2d"),
            ("metrics", "sim_makespan"),
        ],
    )
    def test_list_axes(self, capsys, axis, expect):
        assert main(["list", axis]) == 0
        names = capsys.readouterr().out.split()
        assert expect in names
        assert len(names) >= 4

    def test_list_rejects_unknown_axis(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["list", "gadgets"])

    def test_sweep_streams_and_aggregates(self, capsys, tmp_path):
        spec = self._write_spec(tmp_path)
        out = tmp_path / "results.jsonl"
        assert main(["sweep", str(spec), "--workers", "2", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "4 scenarios, 4 runs" in printed
        assert "mean total time" in printed  # the aggregate table
        from repro.io import read_jsonl

        assert len(read_jsonl(out)) == 4

    def test_sweep_resumes(self, capsys, tmp_path):
        spec = self._write_spec(tmp_path)
        out = tmp_path / "results.jsonl"
        assert main(["sweep", str(spec), "--out", str(out), "--quiet"]) == 0
        first = out.read_bytes()
        capsys.readouterr()
        assert main(["sweep", str(spec), "--out", str(out), "--quiet"]) == 0
        assert "4 reused" in capsys.readouterr().out
        assert out.read_bytes() == first

    def test_sweep_missing_spec_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "/no/such/spec.json"])
        assert excinfo.value.code == 2
        assert "cannot read spec file" in capsys.readouterr().err

    def test_sweep_invalid_json_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", str(bad)])
        assert excinfo.value.code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_sweep_bad_axis_exits_2(self, capsys, tmp_path):
        spec = self._write_spec(
            tmp_path,
            {"grid": {"workload": "warp_field", "topology": "hypercube:2"}},
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", str(spec)])
        assert excinfo.value.code == 2
        assert "'workload'" in capsys.readouterr().err

    def test_sweep_bad_workers_exits_2(self, capsys, tmp_path):
        spec = self._write_spec(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", str(spec), "--workers", "0"])
        assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err


class TestVersion:
    def test_version_flag_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("mimdmap ")
        assert out.split()[1][0].isdigit()

    def test_package_version_matches_source_fallback(self):
        from repro.cli import package_version

        version = package_version()
        assert version and version[0].isdigit()


class TestListJson:
    def test_json_listing_matches_plain(self, capsys):
        import json as json_mod

        assert main(["list", "mappers"]) == 0
        plain = capsys.readouterr().out.split()
        assert main(["list", "mappers", "--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["kind"] == "mappers"
        assert payload["names"] == plain
        assert payload["count"] == len(plain)

    def test_json_listing_shares_http_serialization(self, capsys):
        import json as json_mod

        from repro.api import registry_listing

        assert main(["list", "topologies", "--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload == registry_listing("topologies")


class TestServeValidation:
    def test_bad_workers_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["serve", "--workers", "0"])
        assert exc_info.value.code == 2
        assert "--workers" in capsys.readouterr().err

    def test_bad_cache_size_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["serve", "--cache-size", "0"])
        assert exc_info.value.code == 2
        assert "--cache-size" in capsys.readouterr().err

    def test_bad_port_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["serve", "--port", "70000"])
        assert exc_info.value.code == 2
        assert "--port" in capsys.readouterr().err


class TestMapMetricsFlags:
    """`map --metrics / --sim-gantt / --trace-out` (the metrics front end)."""

    ARGS = ["map", "--tasks", "16", "--topology", "hypercube", "--size", "4",
            "--seed", "3"]

    def test_metrics_lines_in_report(self, capsys):
        assert main(self.ARGS + ["--metrics", "hop_bytes,sim_makespan"]) == 0
        out = capsys.readouterr().out
        assert "hop_bytes" in out
        assert "sim_makespan" in out

    def test_unknown_metric_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.ARGS + ["--metrics", "hop_byte"])
        assert excinfo.value.code == 2
        assert "did you mean 'hop_bytes'" in capsys.readouterr().err

    def test_empty_metric_list_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.ARGS + ["--metrics", " , "])
        assert excinfo.value.code == 2
        assert "at least one metric" in capsys.readouterr().err

    def test_sim_gantt_and_trace_out(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(self.ARGS + ["--sim-gantt", "--trace-out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "trace records" in out
        assert "total time" in out  # the simulator chart footer
        from repro.sim import read_trace_jsonl

        loaded = read_trace_jsonl(trace)
        assert loaded.config == "serialized+contention"
        assert loaded.makespan > 0

    def test_unwritable_trace_path_exits_2(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(self.ARGS + ["--trace-out", str(tmp_path / "no" / "dir.jsonl")])
        assert excinfo.value.code == 2
        assert "cannot write trace file" in capsys.readouterr().err

    def test_sweep_spec_with_metrics_records_them(self, capsys, tmp_path):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(
                {
                    "grid": {
                        "workload": {"name": "fft", "params": {"points_log2": 2}},
                        "topology": "hypercube:2",
                        "mapper": ["critical", "random"],
                    },
                    "seed": 5,
                    "metrics": ["hop_bytes", "max_congestion"],
                }
            )
        )
        out = tmp_path / "results.jsonl"
        assert main(["sweep", str(spec), "--out", str(out), "--quiet"]) == 0
        printed = capsys.readouterr().out
        assert "hop_bytes" in printed  # metric columns in the aggregate table
        from repro.io import read_jsonl

        records = read_jsonl(out)
        assert all("metrics" in r["outcome"] for r in records)
