"""Unit tests for repro.topology.properties."""

import pytest

from repro.topology import (
    center,
    chain,
    complete,
    degree_histogram,
    eccentricities,
    edge_connectivity_lower_bound,
    hypercube,
    is_regular,
    mesh2d,
    radius,
    ring,
    star,
    summarize,
)
from repro.utils import GraphError


class TestProperties:
    def test_is_regular(self):
        assert is_regular(ring(5))
        assert is_regular(hypercube(3))
        assert not is_regular(chain(4))
        assert not is_regular(star(5))

    def test_degree_histogram(self):
        assert degree_histogram(chain(4)) == {1: 2, 2: 2}
        assert degree_histogram(ring(5)) == {2: 5}
        assert degree_histogram(mesh2d(3, 3)) == {2: 4, 3: 4, 4: 1}

    def test_eccentricities_chain(self):
        ecc = eccentricities(chain(5))
        assert ecc.tolist() == [4, 3, 2, 3, 4]

    def test_radius_and_center(self):
        assert radius(chain(5)) == 2
        assert center(chain(5)).tolist() == [2]
        assert radius(star(6)) == 1
        assert center(star(6)).tolist() == [0]

    def test_radius_le_diameter(self):
        for g in (ring(7), mesh2d(3, 4), hypercube(4)):
            assert radius(g) <= g.diameter() <= 2 * radius(g)

    def test_edge_connectivity_lower_bound(self):
        assert edge_connectivity_lower_bound(ring(5)) == 2
        assert edge_connectivity_lower_bound(chain(4)) == 1
        with pytest.raises(GraphError):
            edge_connectivity_lower_bound(complete(1))

    def test_summarize_keys(self):
        info = summarize(hypercube(3))
        assert info["name"] == "hypercube-8"
        assert info["nodes"] == 8
        assert info["links"] == 12
        assert info["diameter"] == 3
        assert info["regular"] is True
        assert info["min_degree"] == info["max_degree"] == 3
