"""Tests for the analytic list scheduler (serialized processors)."""

import numpy as np
import pytest

from repro.core import (
    Assignment,
    ClusteredGraph,
    Clustering,
    TaskGraph,
    evaluate_assignment,
    verify_times,
)
from repro.core.listsched import bottom_levels, list_schedule
from repro.sim import SimConfig, simulate
from repro.topology import SystemGraph, chain, complete
from tests.conftest import random_instance


class TestBottomLevels:
    def test_chain(self, chain_graph):
        cg = ClusteredGraph(chain_graph, Clustering([0, 1, 2, 3]))
        # blevel[i] = sizes + comm to the end: 1+3+1+1+1+2+1, ...
        assert bottom_levels(cg).tolist() == [10, 6, 4, 1]

    def test_exit_tasks_are_own_size(self, diamond_clustered):
        bl = bottom_levels(diamond_clustered)
        assert bl[3] == 2  # exit task: its own size

    def test_intra_cluster_comm_free(self, diamond_graph):
        merged = ClusteredGraph(diamond_graph, Clustering([0, 0, 0, 0]))
        bl = bottom_levels(merged)
        assert bl[0] == 2 + 3 + 2  # longest node-only chain


class TestListSchedule:
    def test_serializes_processors(self):
        for seed in range(5):
            clustered, system = random_instance(seed)
            a = Assignment.random(system.num_nodes, rng=seed)
            for policy in ("fifo", "blevel"):
                ls = list_schedule(clustered, system, a, policy=policy)
                # No two tasks on the same processor overlap.
                labels = clustered.clustering.labels
                host = a.placement[labels]
                for p in range(system.num_nodes):
                    tasks = np.flatnonzero(host == p)
                    order = tasks[np.argsort(ls.start[tasks])]
                    for t1, t2 in zip(order, order[1:]):
                        assert ls.start[t2] >= ls.end[t1]

    def test_valid_schedule(self):
        for seed in range(5):
            clustered, system = random_instance(seed)
            a = Assignment.random(system.num_nodes, rng=seed)
            ls = list_schedule(clustered, system, a)
            verify_times(
                clustered, system, a, ls.start, ls.end, require_asap=False
            )

    def test_never_faster_than_paper_model(self):
        for seed in range(5):
            clustered, system = random_instance(seed)
            a = Assignment.random(system.num_nodes, rng=seed)
            paper = evaluate_assignment(clustered, system, a).total_time
            assert list_schedule(clustered, system, a).makespan >= paper

    def test_fifo_matches_des_mostly(self):
        """Exact agreement except same-instant ready ties (documented)."""
        agree = 0
        for seed in range(12):
            clustered, system = random_instance(seed)
            a = Assignment.random(system.num_nodes, rng=seed)
            ls = list_schedule(clustered, system, a, policy="fifo")
            des = simulate(
                clustered, system, a, SimConfig(serialize_processors=True)
            )
            agree += ls.makespan == des.makespan
        assert agree >= 9

    def test_fifo_matches_des_exactly_without_ties(self):
        """A chain workload has no simultaneous-ready collisions."""
        g = TaskGraph([2, 3, 1, 4], [(0, 1, 2), (1, 2, 1), (2, 3, 3)])
        cg = ClusteredGraph(g, Clustering([0, 1, 0, 1]))
        system = chain(2)
        a = Assignment.identity(2)
        ls = list_schedule(cg, system, a, policy="fifo")
        des = simulate(cg, system, a, SimConfig(serialize_processors=True))
        assert ls.makespan == des.makespan
        assert np.array_equal(ls.start, des.start)

    def test_blevel_prioritizes_critical_work(self):
        """Two ready tasks, one on the critical path: blevel runs it
        first, FIFO (by id) runs the other."""
        # Tasks: 0 and 1 ready at 0 on the same processor; 1 feeds a long
        # chain, 0 is a leaf.  ids chosen so FIFO prefers the leaf.
        g = TaskGraph(
            [5, 5, 10],
            [(1, 2, 1)],
        )
        cg = ClusteredGraph(g, Clustering([0, 0, 1]))
        system = chain(2)
        a = Assignment.identity(2)
        fifo = list_schedule(cg, system, a, policy="fifo")
        blevel = list_schedule(cg, system, a, policy="blevel")
        assert blevel.start[1] == 0  # critical task first
        assert fifo.start[0] == 0    # id order first
        assert blevel.makespan <= fifo.makespan

    def test_blevel_never_catastrophic(self):
        """blevel must stay within 2x of FIFO (both are list schedules)."""
        for seed in range(6):
            clustered, system = random_instance(seed)
            a = Assignment.random(system.num_nodes, rng=seed)
            fifo = list_schedule(clustered, system, a, policy="fifo").makespan
            blevel = list_schedule(clustered, system, a, policy="blevel").makespan
            assert blevel <= 2 * fifo

    def test_bad_policy(self, diamond_clustered, ring4):
        with pytest.raises(ValueError, match="policy"):
            list_schedule(
                diamond_clustered, ring4, Assignment.identity(4), policy="lifo"
            )

    def test_single_processor_full_serialization(self):
        g = TaskGraph([3, 4, 5])
        cg = ClusteredGraph(g, Clustering([0, 0, 0]))
        system = SystemGraph(np.zeros((1, 1), dtype=int))
        ls = list_schedule(cg, system, Assignment.identity(1))
        assert ls.makespan == 12  # pure sum of sizes
