"""Unit tests for repro.core.clustered (Clustering + ClusteredGraph)."""

import numpy as np
import pytest

from repro.core import ClusteredGraph, Clustering, TaskGraph
from repro.utils import GraphError


class TestClustering:
    def test_basic(self):
        c = Clustering([0, 1, 0, 1])
        assert c.num_clusters == 2
        assert c.num_tasks == 4
        assert c.cluster_of(2) == 0
        assert c.members(1).tolist() == [1, 3]

    def test_sizes(self):
        c = Clustering([0, 0, 1])
        assert c.sizes().tolist() == [2, 1]

    def test_explicit_cluster_count(self):
        with pytest.raises(GraphError, match="empty"):
            Clustering([0, 0], num_clusters=2)

    def test_empty_cluster_rejected(self):
        with pytest.raises(GraphError, match="empty"):
            Clustering([0, 2, 0], num_clusters=3)

    def test_negative_label_rejected(self):
        with pytest.raises(GraphError):
            Clustering([0, -1])

    def test_label_out_of_range(self):
        with pytest.raises(GraphError, match="out of range"):
            Clustering([0, 5], num_clusters=2)

    def test_from_groups(self):
        c = Clustering.from_groups([[0, 2], [1, 3]])
        assert c.cluster_of(0) == 0
        assert c.cluster_of(3) == 1

    def test_from_groups_must_partition(self):
        with pytest.raises(GraphError):
            Clustering.from_groups([[0, 1], [1, 2]])
        with pytest.raises(GraphError):
            Clustering.from_groups([[0], [2]])  # task 1 missing

    def test_load(self, diamond_graph):
        c = Clustering([0, 0, 1, 1])
        assert c.load(diamond_graph).tolist() == [5, 3]

    def test_clus_pnode_padding(self):
        c = Clustering([0, 0, 1])
        table = c.clus_pnode()
        assert table.shape == (2, 3)
        assert table[0].tolist() == [0, 1, -1]
        assert table[1].tolist() == [2, -1, -1]

    def test_equality(self):
        assert Clustering([0, 1]) == Clustering([0, 1])
        assert Clustering([0, 1]) != Clustering([1, 0])

    def test_labels_read_only(self):
        c = Clustering([0, 1])
        with pytest.raises(ValueError):
            c.labels[0] = 1


class TestClusteredGraph:
    def test_intra_edges_zeroed(self, diamond_graph):
        cg = ClusteredGraph(diamond_graph, Clustering([0, 0, 1, 1]))
        # (0,1) intra cluster 0; (2,3) intra cluster 1 -> zeroed
        assert cg.comm_weight(0, 1) == 0
        assert cg.comm_weight(2, 3) == 0
        # (0,2) and (1,3) cross -> kept
        assert cg.comm_weight(0, 2) == 2
        assert cg.comm_weight(1, 3) == 2

    def test_cut_and_internal(self, diamond_graph):
        cg = ClusteredGraph(diamond_graph, Clustering([0, 0, 1, 1]))
        assert cg.cut_weight() == 4
        assert cg.internal_weight() == 2
        assert cg.cut_weight() + cg.internal_weight() == diamond_graph.total_comm

    def test_singleton_clustering_keeps_everything(self, diamond_graph):
        cg = ClusteredGraph(diamond_graph, Clustering([0, 1, 2, 3]))
        assert np.array_equal(cg.clus_edge, diamond_graph.prob_edge)
        assert cg.internal_weight() == 0

    def test_one_cluster_absorbs_everything(self, diamond_graph):
        cg = ClusteredGraph(diamond_graph, Clustering([0, 0, 0, 0]))
        assert cg.cut_weight() == 0

    def test_size_mismatch_rejected(self, diamond_graph):
        with pytest.raises(GraphError, match="covers"):
            ClusteredGraph(diamond_graph, Clustering([0, 1]))

    def test_passthrough_properties(self, diamond_graph):
        cg = ClusteredGraph(diamond_graph, Clustering([0, 1, 0, 1]))
        assert cg.num_tasks == 4
        assert cg.num_clusters == 2
        assert np.array_equal(cg.task_sizes, diamond_graph.task_sizes)
        assert np.array_equal(cg.prob_edge, diamond_graph.prob_edge)
        assert cg.cluster_of(2) == 0

    def test_clus_edge_read_only(self, diamond_clustered):
        with pytest.raises(ValueError):
            diamond_clustered.clus_edge[0, 1] = 7
