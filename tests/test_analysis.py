"""Unit tests for the repro.analysis package (gantt, tables, histogram, stats)."""

import pytest

from repro.analysis import (
    ExperimentRow,
    percent_over_bound,
    render_experiment_table,
    render_gantt,
    render_histogram,
    render_ideal_gantt,
    render_table,
    summarize_rows,
)
from repro.core import Assignment, evaluate_assignment, ideal_schedule
from repro.topology import chain
from repro.workloads import (
    running_example_assignment_vector,
    running_example_clustered,
    running_example_system,
)


def _rows():
    return [
        ExperimentRow(
            index=1, num_tasks=100, num_processors=8, topology="hypercube-8",
            lower_bound=100, our_total_time=104, random_mean_total_time=148.0,
            reached_lower_bound=False,
        ),
        ExperimentRow(
            index=2, num_tasks=50, num_processors=8, topology="hypercube-8",
            lower_bound=50, our_total_time=50, random_mean_total_time=89.0,
            reached_lower_bound=True,
        ),
    ]


class TestStats:
    def test_percent_over_bound(self):
        assert percent_over_bound(148, 100) == pytest.approx(148.0)
        assert percent_over_bound(50, 50) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            percent_over_bound(10, 0)

    def test_row_metrics(self):
        row = _rows()[0]
        assert row.ours_pct == pytest.approx(104.0)
        assert row.random_pct == pytest.approx(148.0)
        assert row.improvement == pytest.approx(44.0)

    def test_summary(self):
        summary = summarize_rows(_rows())
        assert summary.rows == 2
        assert summary.ours_pct_min == pytest.approx(100.0)
        assert summary.ours_pct_max == pytest.approx(104.0)
        assert summary.improvement_max == pytest.approx(78.0)
        assert summary.lower_bound_hits == 1
        assert "2 experiments" in str(summary)

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            summarize_rows([])


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [("a", 1), ("bb", 22)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_experiment_table_marks_hits(self):
        text = render_experiment_table(_rows(), "Table X")
        assert "Table X" in text
        assert "100*" in text  # the lower-bound hit is starred
        assert "44" in text    # improvement column

    def test_float_formatting(self):
        text = render_table(["x"], [(1.2345,)])
        assert "1.2" in text


class TestHistogram:
    def test_render_histogram(self):
        text = render_histogram(_rows(), "Fig. X", step=10)
        assert "Fig. X" in text
        assert "*" in text  # the exact-hit marker
        assert "100 +" in text
        # Tallest bar must reach the random percentage band.
        assert "150" in text or "160" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_histogram([], "nope")

    def test_bad_step(self):
        with pytest.raises(ValueError):
            render_histogram(_rows(), "x", step=0)


class TestGantt:
    def test_ideal_gantt_matches_fig6(self):
        ideal = ideal_schedule(running_example_clustered())
        text = render_ideal_gantt(ideal)
        assert "total time = 14" in text
        lines = text.splitlines()
        assert lines[0].startswith("time |")
        # Task 1 occupies cluster column C0 at time 0.
        assert "[1]" in lines[2]

    def test_assignment_gantt(self):
        clustered = running_example_clustered()
        schedule = evaluate_assignment(
            clustered,
            running_example_system(),
            Assignment(running_example_assignment_vector()),
        )
        text = render_gantt(schedule)
        assert "total time = 14" in text
        assert "P0" in text and "P3" in text

    def test_truncation(self):
        clustered = running_example_clustered()
        schedule = evaluate_assignment(
            clustered,
            running_example_system(),
            Assignment(running_example_assignment_vector()),
        )
        text = render_gantt(schedule, max_rows=5)
        assert "more time units" in text

    def test_overlap_rendering(self):
        """Two overlapping tasks on one processor are stacked with '/'."""
        from repro.core import ClusteredGraph, Clustering, TaskGraph

        g = TaskGraph([3, 3])
        cg = ClusteredGraph(g, Clustering([0, 0]))
        import numpy as np

        from repro.topology import SystemGraph

        system = SystemGraph(np.zeros((1, 1), dtype=int))
        schedule = evaluate_assignment(cg, system, Assignment.identity(1))
        text = render_gantt(schedule)
        assert "[1]/[2]" in text


class TestSimGantt:
    def test_serialized_run_shows_no_overlap(self):
        """The sim-trace gantt of a serialized run never stacks tasks."""
        import numpy as np

        from repro.analysis import render_sim_gantt
        from repro.core import ClusteredGraph, Clustering, TaskGraph
        from repro.sim import SimConfig, simulate
        from repro.topology import SystemGraph

        g = TaskGraph([3, 3])
        cg = ClusteredGraph(g, Clustering([0, 0]))
        system = SystemGraph(np.zeros((1, 1), dtype=int))
        sim = simulate(
            cg, system, Assignment.identity(1),
            SimConfig(serialize_processors=True),
        )
        text = render_sim_gantt(sim, num_processors=1)
        assert "/" not in text.replace("-+-", "")  # no stacked cells
        assert "total time = 6" in text

    def test_matches_analytic_gantt_in_paper_mode(self):
        from repro.analysis import render_sim_gantt
        from repro.core import ClusteredGraph
        from repro.sim import simulate
        from repro.workloads import (
            running_example_assignment_vector,
            running_example_clustered,
            running_example_system,
        )

        clustered = running_example_clustered()
        system = running_example_system()
        a = Assignment(running_example_assignment_vector())
        sim = simulate(clustered, system, a)
        text = render_sim_gantt(sim, num_processors=system.num_nodes)
        assert "total time = 14" in text
