"""Tests for the independent schedule validator."""

import numpy as np
import pytest

from repro.core import (
    Assignment,
    ClusteredGraph,
    Clustering,
    ScheduleViolation,
    TaskGraph,
    evaluate_assignment,
    verify_schedule,
    verify_times,
)
from repro.sim import SimConfig, simulate
from repro.topology import chain, ring
from tests.conftest import random_instance


class TestVerifySchedule:
    def test_evaluator_output_always_valid(self):
        for seed in range(8):
            clustered, system = random_instance(seed)
            schedule = evaluate_assignment(
                clustered, system, Assignment.random(system.num_nodes, rng=seed)
            )
            verify_schedule(schedule)  # must not raise

    def test_simulator_paper_mode_valid(self):
        clustered, system = random_instance(1)
        a = Assignment.random(system.num_nodes, rng=1)
        sim = simulate(clustered, system, a)
        verify_times(clustered, system, a, sim.start, sim.end)

    def test_serialized_simulator_valid_without_asap(self):
        """Serialized runs insert queueing delay: legal, but not ASAP."""
        clustered, system = random_instance(2)
        a = Assignment.random(system.num_nodes, rng=2)
        sim = simulate(clustered, system, a, SimConfig(serialize_processors=True))
        verify_times(
            clustered, system, a, sim.start, sim.end, require_asap=False
        )

    def test_detects_short_duration(self, diamond_clustered, ring4):
        a = Assignment.identity(4)
        schedule = evaluate_assignment(diamond_clustered, ring4, a)
        end = schedule.end.copy()
        end[0] -= 1
        with pytest.raises(ScheduleViolation, match="runs for"):
            verify_times(diamond_clustered, ring4, a, schedule.start, end)

    def test_detects_precedence_violation(self, diamond_clustered):
        system = chain(4)
        a = Assignment.identity(4)
        schedule = evaluate_assignment(diamond_clustered, system, a)
        start = schedule.start.copy()
        end = schedule.end.copy()
        start[3] = 0  # task 3 starts before its inputs
        end[3] = start[3] + diamond_clustered.task_sizes[3]
        with pytest.raises(ScheduleViolation, match="before its input"):
            verify_times(diamond_clustered, system, a, start, end)

    def test_detects_negative_start(self, diamond_clustered, ring4):
        a = Assignment.identity(4)
        schedule = evaluate_assignment(diamond_clustered, ring4, a)
        start = schedule.start.copy()
        end = schedule.end.copy()
        start[0] -= 1
        end[0] -= 1
        with pytest.raises(ScheduleViolation, match="before time 0"):
            verify_times(diamond_clustered, ring4, a, start, end)

    def test_detects_idle_entry_under_asap(self):
        g = TaskGraph([2, 2], [(0, 1, 1)])
        cg = ClusteredGraph(g, Clustering([0, 1]))
        system = chain(2)
        a = Assignment.identity(2)
        start = np.asarray([5, 8])
        end = np.asarray([7, 10])
        with pytest.raises(ScheduleViolation, match="idles"):
            verify_times(cg, system, a, start, end)
        # But it is a legal (non-ASAP) schedule.
        verify_times(cg, system, a, start, end, require_asap=False)

    def test_detects_late_start_under_asap(self):
        g = TaskGraph([2, 2], [(0, 1, 1)])
        cg = ClusteredGraph(g, Clustering([0, 1]))
        system = chain(2)
        a = Assignment.identity(2)
        start = np.asarray([0, 5])  # input complete at 3
        end = np.asarray([2, 7])
        with pytest.raises(ScheduleViolation, match="as-soon-as-possible"):
            verify_times(cg, system, a, start, end)

    def test_detects_wrong_shape(self, diamond_clustered, ring4):
        with pytest.raises(ScheduleViolation, match="shape"):
            verify_times(
                diamond_clustered, ring4, Assignment.identity(4),
                np.zeros(3), np.zeros(3),
            )
