"""Tests for the sensitivity-sweep experiment module."""

import pytest

from repro.experiments import (
    format_sweep,
    sweep_comm_ratio,
    sweep_edge_density,
    sweep_problem_size,
)


class TestSweeps:
    def test_comm_ratio_monotone_random_column(self):
        """Heavier communication pushes random mapping further from the
        bound — the core calibration fact recorded in EXPERIMENTS.md."""
        points = sweep_comm_ratio(rng=5, comm_highs=(2, 10), instances=2)
        assert points[0].random_pct_mean < points[1].random_pct_mean

    def test_density_pushes_everyone_up(self):
        points = sweep_edge_density(rng=5, densities=(0.25, 3.0), instances=2)
        assert points[0].ours_pct_mean < points[1].ours_pct_mean
        assert points[0].random_pct_mean < points[1].random_pct_mean

    def test_problem_size_hit_rate(self):
        points = sweep_problem_size(rng=5, task_counts=(40, 300), instances=3)
        # Small instances hit the bound at least as often as huge ones.
        assert points[0].hit_rate >= points[1].hit_rate

    def test_point_fields(self):
        (point,) = sweep_comm_ratio(rng=1, comm_highs=(5,), instances=1)
        assert point.knob == "comm_hi"
        assert point.value == 5
        assert point.instances == 2  # two default systems x 1 instance
        assert point.ours_pct_mean >= 100.0
        assert point.improvement_mean == pytest.approx(
            point.random_pct_mean - point.ours_pct_mean
        )

    def test_format(self):
        points = sweep_comm_ratio(rng=1, comm_highs=(2, 5), instances=1)
        text = format_sweep(points, "comm sweep")
        assert "comm sweep" in text
        assert "comm_hi" in text
        assert "improvement" in text
