"""Unit tests for repro.core.initial (the three-phase initial assignment)."""

import numpy as np
import pytest

from repro.core import (
    AbstractGraph,
    ClusteredGraph,
    Clustering,
    TaskGraph,
    analyze_criticality,
    initial_assignment,
)
from repro.core.refine import critical_abstract_nodes
from repro.topology import chain, hypercube, ring, star
from repro.utils import MappingError
from tests.conftest import random_instance


def _pipeline(clustered):
    abstract = AbstractGraph(clustered)
    analysis = analyze_criticality(clustered)
    return abstract, analysis


class TestInitialAssignment:
    def test_returns_bijection(self):
        for seed in range(8):
            clustered, system = random_instance(seed)
            abstract, analysis = _pipeline(clustered)
            a = initial_assignment(abstract, analysis, system, rng=seed)
            assert sorted(a.assi.tolist()) == list(range(system.num_nodes))

    def test_deterministic_without_rng(self, medium_instance):
        clustered, system = medium_instance
        abstract, analysis = _pipeline(clustered)
        a = initial_assignment(abstract, analysis, system)
        b = initial_assignment(abstract, analysis, system)
        assert a == b

    def test_deterministic_with_seed(self, medium_instance):
        clustered, system = medium_instance
        abstract, analysis = _pipeline(clustered)
        a = initial_assignment(abstract, analysis, system, rng=5)
        b = initial_assignment(abstract, analysis, system, rng=5)
        assert a == b

    def test_na_ns_mismatch_rejected(self, diamond_clustered):
        abstract, analysis = _pipeline(diamond_clustered)
        with pytest.raises(MappingError):
            initial_assignment(abstract, analysis, ring(5))

    def test_bad_tie_break_rejected(self, diamond_clustered, ring4):
        abstract, analysis = _pipeline(diamond_clustered)
        with pytest.raises(ValueError, match="tie_break"):
            initial_assignment(abstract, analysis, ring4, tie_break="best")

    def test_seed_cluster_has_max_critical_degree(self, diamond_clustered):
        """Phase 1 pairs the max-critical-degree cluster with a max-degree
        processor (on a star, that is the hub)."""
        abstract, analysis = _pipeline(diamond_clustered)
        system = star(4)
        a = initial_assignment(abstract, analysis, system)
        top_cluster = int(np.argmax(analysis.critical_degree))
        assert a.system_of(top_cluster) == 0  # the hub

    def test_critical_chain_lands_on_single_edges(self, diamond_clustered):
        """On a chain machine, the diamond's critical path 0->1->3 (three
        clusters) must occupy adjacent processors."""
        system = chain(4)
        abstract, analysis = _pipeline(diamond_clustered)
        a = initial_assignment(abstract, analysis, system)
        assert system.distance(a.system_of(0), a.system_of(1)) == 1
        assert system.distance(a.system_of(1), a.system_of(3)) == 1

    def test_pinned_nodes_follow_definition5(self, medium_instance):
        clustered, system = medium_instance
        abstract, analysis = _pipeline(clustered)
        a = initial_assignment(abstract, analysis, system, rng=3)
        pinned = critical_abstract_nodes(analysis, system, a)
        c_abs = analysis.c_abs_edge
        for node in range(abstract.num_nodes):
            expected = any(
                c_abs[node, other] > 0
                and system.distance(a.system_of(node), a.system_of(other)) == 1
                for other in range(abstract.num_nodes)
            )
            assert pinned[node] == expected

    def test_no_critical_edges_still_works(self):
        """With guidance zeroed the algorithm must still place everything."""
        g = TaskGraph([1, 1, 1, 1])  # four independent tasks, no edges
        cg = ClusteredGraph(g, Clustering([0, 1, 2, 3]))
        abstract, analysis = _pipeline(cg)
        a = initial_assignment(abstract, analysis, ring(4))
        assert sorted(a.assi.tolist()) == [0, 1, 2, 3]

    def test_disconnected_abstract_graph(self):
        """Two independent chains -> disconnected abstract graph; the
        fallback seeds a second component."""
        g = TaskGraph(
            [1, 1, 1, 1],
            [(0, 1, 3), (2, 3, 3)],
        )
        cg = ClusteredGraph(g, Clustering([0, 1, 2, 3]))
        abstract, analysis = _pipeline(cg)
        a = initial_assignment(abstract, analysis, ring(4))
        assert sorted(a.assi.tolist()) == [0, 1, 2, 3]

    def test_affinity_beats_or_matches_degree_on_average(self):
        """The affinity tie-break should not be worse than the literal
        degree rule in aggregate (it was designed to dominate it)."""
        from repro.core import total_time

        wins = 0
        total = 0
        for seed in range(10):
            clustered, system = random_instance(seed, system=hypercube(3))
            abstract, analysis = _pipeline(clustered)
            aff = initial_assignment(
                abstract, analysis, system, tie_break="affinity"
            )
            deg = initial_assignment(abstract, analysis, system, tie_break="degree")
            t_aff = total_time(clustered, system, aff)
            t_deg = total_time(clustered, system, deg)
            wins += t_aff <= t_deg
            total += 1
        assert wins >= total * 0.6

    def test_paper_example_reaches_lower_bound(self):
        from repro.core import total_time
        from repro.workloads import running_example_clustered, running_example_system

        clustered = running_example_clustered()
        system = running_example_system()
        abstract, analysis = _pipeline(clustered)
        a = initial_assignment(abstract, analysis, system)
        assert total_time(clustered, system, a) == 14  # Fig. 24
