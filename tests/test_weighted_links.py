"""Tests for the heterogeneous-link-cost extension of SystemGraph."""

import numpy as np
import pytest

from repro.core import (
    Assignment,
    ClusteredGraph,
    Clustering,
    TaskGraph,
    communication_matrix,
    evaluate_assignment,
    lower_bound,
    total_time,
)
from repro.sim import simulate
from repro.topology import SystemGraph
from repro.utils import GraphError


def _triangle(weights=None):
    adj = np.asarray([[0, 1, 1], [1, 0, 1], [1, 1, 0]])
    return SystemGraph(adj, name="tri", link_weights=weights)


class TestConstruction:
    def test_unit_default(self):
        g = _triangle()
        assert not g.is_weighted
        assert np.array_equal(g.link_weights, g.sys_edge)

    def test_weighted_distances_take_detours(self):
        # Direct link 0-1 costs 5; route via 2 costs 1 + 1 = 2.
        w = np.asarray([[0, 5, 1], [5, 0, 1], [1, 1, 0]])
        g = _triangle(w)
        assert g.is_weighted
        assert g.distance(0, 1) == 2
        assert g.shortest_path(0, 1) == [0, 2, 1]

    def test_all_unit_weights_not_flagged_weighted(self):
        g = _triangle(np.asarray([[0, 1, 1], [1, 0, 1], [1, 1, 0]]))
        assert not g.is_weighted

    def test_symmetrized(self):
        w = np.zeros((3, 3), dtype=int)
        w[0, 1] = 4  # only one triangle filled
        w[0, 2] = 1
        w[1, 2] = 1
        g = _triangle(w)
        assert g.link_weight(1, 0) == 4

    def test_zero_weight_link_rejected(self):
        w = np.asarray([[0, 0, 1], [0, 0, 1], [1, 1, 0]])
        with pytest.raises(GraphError, match=">= 1"):
            _triangle(w)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GraphError, match="shape"):
            _triangle(np.ones((2, 2), dtype=int))

    def test_triangle_inequality_weighted(self):
        w = np.asarray([[0, 7, 2], [7, 0, 3], [2, 3, 0]])
        g = _triangle(w)
        d = g.shortest
        for a in range(3):
            for b in range(3):
                for c in range(3):
                    assert d[a, c] <= d[a, b] + d[b, c]


class TestWeightedEvaluation:
    @pytest.fixture
    def instance(self):
        graph = TaskGraph([1, 2, 1], [(0, 1, 3), (1, 2, 2)])
        clustered = ClusteredGraph(graph, Clustering([0, 1, 2]))
        w = np.asarray([[0, 5, 1], [5, 0, 1], [1, 1, 0]])
        return clustered, _triangle(w)

    def test_comm_uses_weighted_distance(self, instance):
        clustered, system = instance
        comm = communication_matrix(clustered, system, Assignment.identity(3))
        assert comm[0, 1] == 3 * 2  # detour via node 2 costs 2
        assert comm[1, 2] == 2 * 1

    def test_lower_bound_still_holds(self, instance):
        clustered, system = instance
        bound = lower_bound(clustered)
        for seed in range(6):
            a = Assignment.random(3, rng=seed)
            assert total_time(clustered, system, a) >= bound

    def test_simulator_matches_analytic_on_weighted_links(self, instance):
        clustered, system = instance
        for seed in range(6):
            a = Assignment.random(3, rng=seed)
            sched = evaluate_assignment(clustered, system, a)
            sim = simulate(clustered, system, a)
            assert sim.makespan == sched.total_time
            assert np.array_equal(sim.start, sched.start)

    def test_hop_records_follow_weighted_route(self, instance):
        clustered, system = instance
        sim = simulate(clustered, system, Assignment.identity(3))
        # The (0 -> 1) message must route through node 2: two hop records.
        hops = [r for r in sim.trace.transfers if r.dst_task == 1]
        assert len(hops) == 2
        assert hops[0].link == (0, 2)
        assert hops[1].link == (2, 1)

    def test_mapper_runs_on_weighted_machine(self, instance):
        from repro.core import CriticalEdgeMapper

        clustered, system = instance
        result = CriticalEdgeMapper(rng=0).map(clustered, system)
        assert result.total_time >= result.lower_bound
