"""Unit tests for repro.core.refine (refinement + termination condition)."""

import numpy as np
import pytest

from repro.core import (
    AbstractGraph,
    Assignment,
    analyze_criticality,
    initial_assignment,
    refine_pairwise,
    refine_random,
    total_time,
)
from repro.core.refine import critical_abstract_nodes
from tests.conftest import random_instance


def _setup(clustered, system, seed=0):
    abstract = AbstractGraph(clustered)
    analysis = analyze_criticality(clustered)
    init = initial_assignment(abstract, analysis, system, rng=seed)
    return analysis, init


class TestRefineRandom:
    def test_never_worse_than_initial(self):
        for seed in range(8):
            clustered, system = random_instance(seed)
            analysis, init = _setup(clustered, system, seed)
            result = refine_random(clustered, system, analysis, init, rng=seed)
            assert result.total_time <= total_time(clustered, system, init)

    def test_result_time_consistent(self):
        for seed in range(5):
            clustered, system = random_instance(seed)
            analysis, init = _setup(clustered, system, seed)
            result = refine_random(clustered, system, analysis, init, rng=seed)
            assert result.total_time == total_time(
                clustered, system, result.assignment
            )

    def test_respects_lower_bound(self):
        for seed in range(5):
            clustered, system = random_instance(seed)
            analysis, init = _setup(clustered, system, seed)
            result = refine_random(clustered, system, analysis, init, rng=seed)
            assert result.total_time >= result.lower_bound
            assert result.reached_lower_bound == (
                result.total_time == result.lower_bound
            )

    def test_trial_budget_defaults_to_ns(self):
        clustered, system = random_instance(3)
        analysis, init = _setup(clustered, system, 3)
        result = refine_random(clustered, system, analysis, init, rng=3)
        assert result.trials <= system.num_nodes

    def test_custom_trial_budget(self):
        clustered, system = random_instance(4)
        analysis, init = _setup(clustered, system, 4)
        result = refine_random(
            clustered, system, analysis, init, rng=4, max_trials=3
        )
        assert result.trials <= 3

    def test_terminates_immediately_at_bound(self):
        """If the initial assignment already meets the bound, zero trials."""
        from repro.workloads import running_example_clustered, running_example_system

        clustered = running_example_clustered()
        system = running_example_system()
        analysis, init = _setup(clustered, system)
        result = refine_random(clustered, system, analysis, init, rng=0)
        assert result.reached_lower_bound
        assert result.trials == 0
        assert not result.improved

    def test_pinned_clusters_never_move(self):
        for seed in range(6):
            clustered, system = random_instance(seed)
            analysis, init = _setup(clustered, system, seed)
            pinned = critical_abstract_nodes(analysis, system, init)
            result = refine_random(clustered, system, analysis, init, rng=seed)
            for cluster in np.flatnonzero(pinned).tolist():
                assert result.assignment.system_of(cluster) == init.system_of(cluster)

    def test_movable_pool_preserved(self):
        """Non-pinned clusters stay within the non-pinned processor pool."""
        clustered, system = random_instance(2)
        analysis, init = _setup(clustered, system, 2)
        pinned = critical_abstract_nodes(analysis, system, init)
        pool = set(init.placement[~pinned].tolist())
        result = refine_random(clustered, system, analysis, init, rng=2)
        for cluster in np.flatnonzero(~pinned).tolist():
            assert result.assignment.system_of(cluster) in pool


class TestRefinePairwise:
    def test_never_worse_than_initial(self):
        for seed in range(6):
            clustered, system = random_instance(seed)
            analysis, init = _setup(clustered, system, seed)
            result = refine_pairwise(clustered, system, analysis, init, rng=seed)
            assert result.total_time <= total_time(clustered, system, init)

    def test_pinned_clusters_never_move(self):
        clustered, system = random_instance(1)
        analysis, init = _setup(clustered, system, 1)
        pinned = critical_abstract_nodes(analysis, system, init)
        result = refine_pairwise(clustered, system, analysis, init, rng=1)
        for cluster in np.flatnonzero(pinned).tolist():
            assert result.assignment.system_of(cluster) == init.system_of(cluster)

    def test_improved_flag(self):
        clustered, system = random_instance(0)
        analysis, init = _setup(clustered, system, 0)
        result = refine_pairwise(
            clustered, system, analysis, init, rng=0, max_trials=50
        )
        init_time = total_time(clustered, system, init)
        assert result.improved == (result.total_time < init_time)


class TestCriticalAbstractNodes:
    def test_empty_when_no_critical_edges(self):
        from repro.core import ClusteredGraph, Clustering, TaskGraph
        from repro.topology import ring

        g = TaskGraph([1, 1, 1, 1])
        cg = ClusteredGraph(g, Clustering([0, 1, 2, 3]))
        analysis = analyze_criticality(cg)
        pinned = critical_abstract_nodes(analysis, ring(4), Assignment.identity(4))
        assert not pinned.any()

    def test_both_endpoints_pinned(self, diamond_clustered):
        from repro.topology import chain

        system = chain(4)
        analysis = analyze_criticality(diamond_clustered)
        # Identity: clusters 0,1 adjacent (critical edge (0,1) on one link).
        pinned = critical_abstract_nodes(analysis, system, Assignment.identity(4))
        assert pinned[0] and pinned[1]

    def test_distance_two_not_pinned(self, diamond_clustered):
        from repro.topology import chain

        system = chain(4)
        analysis = analyze_criticality(diamond_clustered)
        # Place cluster 0 and 1 two hops apart, 1 and 3 two hops apart:
        # placement cluster->system: 0->0, 1->2, 2->1, 3->... need dist(1,3)>1
        a = Assignment.from_placement([0, 2, 1, 3])
        # critical edges: (0,1) at dist 2 -> not single edge; (1,3) at dist 1.
        pinned = critical_abstract_nodes(analysis, system, a)
        assert pinned[1] and pinned[3]
        assert not pinned[0]
        assert not pinned[2]
