"""Tests for the sharded serving fleet (repro.service.shard).

Covers the keyspace math, the fingerprint-routing gateway over a live
two-shard fleet, backpressure (429 + Retry-After), keyspace enforcement
(421), dead-shard degradation (502), and the acceptance path: a killed
and restarted shard re-serves its cached fingerprints bit-identically.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api.scenario import Scenario
from repro.service import (
    KeyspaceSlice,
    MappingService,
    ServiceSaturatedError,
    WrongShardError,
    make_gateway,
    make_server,
    outcome_to_dict,
    scenario_fingerprint,
    shard_for_fingerprint,
)
from repro.service.shard.keyspace import KEYSPACE_BUCKETS, fingerprint_bucket
from repro.utils import MappingError

SRC = Path(__file__).resolve().parent.parent / "src"

BASE = {
    "workload": "fft",
    "workload_params": {"points_log2": 2},
    "topology": "hypercube:2",
    "mapper": "critical",
}


def scenario_body(seed):
    return dict(BASE, seed=seed)


def seeds_for_shard(index, count, want=3):
    """The first ``want`` seeds whose fingerprints route to ``index``."""
    found = []
    for seed in range(200):
        scenario = Scenario.from_dict(scenario_body(seed))
        fp = scenario_fingerprint(scenario, 0)
        if shard_for_fingerprint(fp, count) == index:
            found.append(seed)
            if len(found) == want:
                return found
    raise AssertionError(f"fewer than {want} seeds route to shard {index}")


def http_get(url, timeout=30.0):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers or {})


def http_post(url, body, timeout=60.0):
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers or {})


def wait_done(base_url, job_id, timeout=90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload, _ = http_get(f"{base_url}/jobs/{job_id}")
        assert status == 200, payload
        if payload["status"] in ("done", "failed"):
            return payload
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


class Fleet:
    """A live in-process fleet: N shard servers plus one gateway."""

    def __init__(self, tmp_path, count=2):
        self.count = count
        self.tmp_path = tmp_path
        self.services = [None] * count
        self.servers = [None] * count
        self.store_paths = [tmp_path / f"shard{i}.db" for i in range(count)]
        for index in range(count):
            self.start_shard(index)
        addresses = [
            f"127.0.0.1:{server.server_address[1]}" for server in self.servers
        ]
        self.gateway = make_gateway(addresses, retries=1, retry_delay=0.05)
        threading.Thread(target=self.gateway.serve_forever, daemon=True).start()
        self.gateway_url = f"http://127.0.0.1:{self.gateway.server_address[1]}"

    def start_shard(self, index, port=0):
        service = MappingService(
            max_workers=1,
            store_path=self.store_paths[index],
            keyspace=KeyspaceSlice.for_shard(index, self.count),
        )
        server = make_server(service, port=port)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        self.services[index] = service
        self.servers[index] = server

    def shard_url(self, index):
        return f"http://127.0.0.1:{self.servers[index].server_address[1]}"

    def stop_shard(self, index):
        port = self.servers[index].server_address[1]
        self.servers[index].shutdown()
        self.servers[index].server_close()
        self.services[index].close()
        return port

    def close(self):
        self.gateway.shutdown()
        self.gateway.server_close()
        for index in range(self.count):
            if self.services[index] is not None and not self.services[index]._closed:
                self.stop_shard(index)


@pytest.fixture
def fleet(tmp_path):
    f = Fleet(tmp_path)
    yield f
    f.close()


class TestKeyspace:
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 7, 16])
    def test_slices_partition_keyspace(self, count):
        slices = [KeyspaceSlice.for_shard(i, count) for i in range(count)]
        assert slices[0].lo == 0
        assert slices[-1].hi == KEYSPACE_BUCKETS
        for left, right in zip(slices, slices[1:]):
            assert left.hi == right.lo  # contiguous, no gap, no overlap

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 7, 16])
    def test_slices_agree_with_routing(self, count):
        slices = [KeyspaceSlice.for_shard(i, count) for i in range(count)]
        probes = [0, 1, 17, 4095, 21845, 32767, 32768, 65534, 65535]
        for bucket in probes:
            fingerprint = f"{bucket:04x}" + "0" * 60
            index = shard_for_fingerprint(fingerprint, count)
            owners = [i for i, s in enumerate(slices) if s.contains(fingerprint)]
            assert owners == [index]

    def test_bucket_and_describe(self):
        assert fingerprint_bucket("ffff" + "0" * 60) == KEYSPACE_BUCKETS - 1
        half = KeyspaceSlice.for_shard(0, 2)
        assert half.describe() == "[0000, 8000)"
        as_dict = half.to_dict()
        assert as_dict == {
            "lo": 0,
            "hi": KEYSPACE_BUCKETS // 2,
            "buckets": KEYSPACE_BUCKETS,
            "hex": "[0000, 8000)",
        }

    def test_validation(self):
        with pytest.raises(MappingError, match="too short"):
            fingerprint_bucket("ab")
        with pytest.raises(MappingError, match="not a hex digest"):
            fingerprint_bucket("zzzz" + "0" * 60)
        with pytest.raises(MappingError, match="shard count"):
            shard_for_fingerprint("abcd" + "0" * 60, 0)
        with pytest.raises(MappingError, match="out of range"):
            KeyspaceSlice.for_shard(2, 2)
        with pytest.raises(MappingError, match="invalid keyspace slice"):
            KeyspaceSlice(5, 5)


class TestBackpressure:
    def test_saturated_service_refuses_with_retry_after(self, tmp_path):
        with MappingService(max_workers=1, queue_limit=0, retry_after=7.5) as svc:
            scenario = Scenario.from_dict(scenario_body(0))
            with pytest.raises(ServiceSaturatedError) as excinfo:
                svc.submit_scenario(scenario)
            assert excinfo.value.retry_after == 7.5
            assert svc.active_jobs() == 0

    def test_admission_frees_slots_as_jobs_finish(self, tmp_path):
        with MappingService(max_workers=1, queue_limit=1) as svc:
            job = svc.submit_scenario(Scenario.from_dict(scenario_body(0)))
            job.result(timeout=120)
            svc.drain(timeout=30)
            assert svc.active_jobs() == 0
            # The slot is free again; an identical re-submit is a cache
            # hit and a *new* scenario is admitted.
            again = svc.submit_scenario(Scenario.from_dict(scenario_body(0)))
            assert again.cached
            other = svc.submit_scenario(Scenario.from_dict(scenario_body(1)))
            other.result(timeout=120)
            svc.drain(timeout=30)

    def test_drain_mode_still_serves_cached(self, tmp_path):
        """queue_limit=0 refuses new work but cached fingerprints and
        in-flight results stay available — the drain/maintenance mode."""
        with MappingService(max_workers=1) as svc:
            scenario = Scenario.from_dict(scenario_body(0))
            svc.submit_scenario(scenario).result(timeout=120)
            svc.drain(timeout=30)
            svc.queue_limit = 0
            cached = svc.submit_scenario(scenario)
            assert cached.cached and cached.status == "done"
            with pytest.raises(ServiceSaturatedError):
                svc.submit_scenario(Scenario.from_dict(scenario_body(1)))

    def test_wrong_shard_refused(self, tmp_path):
        scenario = Scenario.from_dict(scenario_body(0))
        fingerprint = scenario_fingerprint(scenario, 0)
        owner = shard_for_fingerprint(fingerprint, 2)
        wrong = KeyspaceSlice.for_shard(1 - owner, 2)
        with MappingService(max_workers=1, keyspace=wrong) as svc:
            with pytest.raises(WrongShardError, match="keyspace slice"):
                svc.submit_scenario(scenario)
            assert svc.active_jobs() == 0


class TestFleet:
    def test_routing_matches_and_results_are_bit_identical(self, fleet):
        """The acceptance bar: a 2-shard fleet behind the gateway serves
        fingerprint -> outcome exactly like one unsharded service."""
        seeds = seeds_for_shard(0, 2, want=2) + seeds_for_shard(1, 2, want=2)
        outcomes = {}
        for seed in seeds:
            scenario = Scenario.from_dict(scenario_body(seed))
            fingerprint = scenario_fingerprint(scenario, 0)
            expected_shard = shard_for_fingerprint(fingerprint, 2)
            status, payload, _ = http_post(
                f"{fleet.gateway_url}/jobs", scenario_body(seed)
            )
            assert status == 202, payload
            assert payload["shard"] == expected_shard
            assert payload["id"].startswith(f"s{expected_shard}.")
            outcomes[seed] = wait_done(fleet.gateway_url, payload["id"])
        assert [fleet.services[i].executed for i in range(2)] == [2, 2]

        with MappingService(max_workers=1) as reference:
            for seed in seeds:
                job = reference.submit_scenario(Scenario.from_dict(scenario_body(seed)))
                want = outcome_to_dict(job.result(timeout=120))
                got = outcomes[seed]
                assert got["status"] == "done"
                # Deterministic fields match an unsharded service exactly;
                # wall_time is measured per execution, so it is excluded.
                for key in set(want) - {"wall_time"}:
                    assert got["outcome"][key] == want[key], key

        # Identical re-POSTs are warm-cache hits: nothing executes, and
        # the stored outcome round-trips bit-identically (wall_time too).
        for seed in seeds:
            status, payload, _ = http_post(
                f"{fleet.gateway_url}/jobs", scenario_body(seed)
            )
            assert status == 200 and payload["cached"], payload
            cached = wait_done(fleet.gateway_url, payload["id"])
            assert cached["outcome"] == outcomes[seed]["outcome"]
        assert [fleet.services[i].executed for i in range(2)] == [2, 2]

    def test_restarted_shard_re_serves_cached_fingerprints(self, fleet):
        seed = seeds_for_shard(1, 2, want=1)[0]
        status, payload, _ = http_post(f"{fleet.gateway_url}/jobs", scenario_body(seed))
        assert status == 202 and payload["shard"] == 1
        done = wait_done(fleet.gateway_url, payload["id"])
        assert done["status"] == "done"

        port = fleet.stop_shard(1)
        fleet.start_shard(1, port=port)  # same port: gateway list unchanged
        assert fleet.services[1].executed == 0  # fresh process-equivalent

        status, payload, _ = http_post(f"{fleet.gateway_url}/jobs", scenario_body(seed))
        assert status == 200, payload
        assert payload["cached"] and payload["shard"] == 1
        recovered = wait_done(fleet.gateway_url, payload["id"])
        assert recovered["outcome"] == done["outcome"]
        assert fleet.services[1].executed == 0  # served from the store

    def test_gateway_health_aggregates_shard_stats(self, fleet):
        seed = seeds_for_shard(0, 2, want=1)[0]
        _, payload, _ = http_post(f"{fleet.gateway_url}/jobs", scenario_body(seed))
        wait_done(fleet.gateway_url, payload["id"])

        status, health, _ = http_get(f"{fleet.gateway_url}/health")
        assert status == 200
        assert health["role"] == "gateway"
        assert health["status"] == "ok"
        assert health["healthy_shards"] == 2 and health["shard_count"] == 2
        assert health["totals"]["executed"] == 1
        assert health["totals"]["store_records"] == 1
        for index, entry in enumerate(health["shards"]):
            assert entry["shard"] == index and entry["healthy"]
            assert entry["slice"] == KeyspaceSlice.for_shard(index, 2).to_dict()
            shard_health = entry["health"]
            # Satellite (a): every shard reports its queue depth,
            # in-flight count, store record count, and keyspace slice.
            queue = shard_health["queue"]
            assert {"depth", "running", "active", "limit", "retry_after"} <= set(
                queue
            )
            assert shard_health["keyspace"] == entry["slice"]
            store = shard_health["store"]
            assert store["backend"] == "sqlite"
            assert store["records"] == (1 if index == 0 else 0)

    def test_gateway_job_listing_and_lookup(self, fleet):
        seeds = seeds_for_shard(0, 2, want=1) + seeds_for_shard(1, 2, want=1)
        ids = []
        for seed in seeds:
            _, payload, _ = http_post(f"{fleet.gateway_url}/jobs", scenario_body(seed))
            ids.append(payload["id"])
            wait_done(fleet.gateway_url, payload["id"])
        status, listing, _ = http_get(f"{fleet.gateway_url}/jobs")
        assert status == 200
        listed = {job["id"] for job in listing["jobs"]}
        assert set(ids) <= listed
        assert listing["unreachable_shards"] == []
        for job in listing["jobs"]:
            assert job["shard"] in (0, 1)

        status, payload, _ = http_get(f"{fleet.gateway_url}/jobs/not-a-gateway-id")
        assert status == 404 and "s0.job-1" in payload["error"]
        status, payload, _ = http_get(f"{fleet.gateway_url}/jobs/s7.job-1")
        assert status == 404 and "unknown shard" in payload["error"]

    def test_gateway_registry_proxy(self, fleet):
        status, payload, _ = http_get(f"{fleet.gateway_url}/registries/mappers")
        assert status == 200
        assert payload["kind"] == "mappers"
        assert "critical" in payload["names"]

    def test_saturated_shard_429_passes_through_gateway(self, fleet):
        seed = seeds_for_shard(0, 2, want=1)[0]
        fleet.services[0].queue_limit = 0
        status, payload, headers = http_post(
            f"{fleet.gateway_url}/jobs", scenario_body(seed)
        )
        assert status == 429, payload
        assert payload["retry_after"] == fleet.services[0].retry_after
        assert int(headers["Retry-After"]) >= 1
        fleet.services[0].queue_limit = None

    def test_out_of_slice_post_to_shard_is_421(self, fleet):
        seed = seeds_for_shard(1, 2, want=1)[0]  # owned by shard 1 ...
        status, payload, _ = http_post(
            f"{fleet.shard_url(0)}/jobs", scenario_body(seed)  # ... sent to 0
        )
        assert status == 421
        assert "keyspace slice" in payload["error"]

    def test_dead_shard_yields_502_and_degraded_health(self, fleet):
        seed = seeds_for_shard(1, 2, want=1)[0]
        fleet.stop_shard(1)

        status, payload, _ = http_post(f"{fleet.gateway_url}/jobs", scenario_body(seed))
        assert status == 502
        assert "unreachable" in payload["error"]

        status, health, _ = http_get(f"{fleet.gateway_url}/health")
        assert status == 200
        assert health["status"] == "degraded"
        assert health["healthy_shards"] == 1
        assert health["shards"][1]["healthy"] is False

        status, listing, _ = http_get(f"{fleet.gateway_url}/jobs")
        assert status == 200 and listing["unreachable_shards"] == [1]

        # The surviving shard's keyspace keeps serving.
        ok_seed = seeds_for_shard(0, 2, want=1)[0]
        status, payload, _ = http_post(
            f"{fleet.gateway_url}/jobs", scenario_body(ok_seed)
        )
        assert status == 202 and payload["shard"] == 0
        wait_done(fleet.gateway_url, payload["id"])

    def test_gateway_rejects_invalid_bodies_without_forwarding(self, fleet):
        status, payload, _ = http_post(f"{fleet.gateway_url}/jobs", {"workload": 7})
        assert status == 400
        status, payload, _ = http_get(f"{fleet.gateway_url}/nope")
        assert status == 404

    def test_gateway_validates_configuration(self):
        with pytest.raises(MappingError, match="at least one shard"):
            make_gateway([])
        with pytest.raises(MappingError, match="host:port"):
            make_gateway(["localhost"])
        with pytest.raises(MappingError, match="host:port"):
            make_gateway(["host:not-a-port"])


class TestGracefulDrain:
    def serve_args(self, store, port=0, extra=()):
        return [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            str(port),
            "--store",
            str(store),
            "--workers",
            "1",
            *extra,
        ]

    def start_server(self, args):
        env = os.environ.copy()
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            args,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        lines = []
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            lines.append(line)
            if "serving on http://" in line:
                port = int(line.rsplit(":", 1)[1].strip().rstrip("/"))
                return proc, port, lines
        proc.kill()
        raise AssertionError(f"server never came up:\n{''.join(lines)}")

    @pytest.mark.skipif(
        not hasattr(signal, "SIGTERM"), reason="needs POSIX signals"
    )
    def test_sigterm_drains_flushes_and_exits_zero(self, tmp_path):
        store = tmp_path / "drain.jsonl"
        proc, port, _ = self.start_server(self.serve_args(store))
        try:
            base = f"http://127.0.0.1:{port}"
            status, payload, _ = http_post(f"{base}/jobs", scenario_body(0))
            assert status == 202, payload
            done = wait_done(base, payload["id"])
            assert done["status"] == "done"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=90)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "draining" in out and "drained" in out

        # The restarted "shard" recovers the store: same scenario is a
        # warm-cache hit with zero executions.
        proc, port, lines = self.start_server(
            self.serve_args(store, extra=("--shard-index", "0", "--shard-count", "1"))
        )
        try:
            assert any("1 result(s) recovered" in line for line in lines), lines
            assert any("shard 0/1" in line for line in lines), lines
            base = f"http://127.0.0.1:{port}"
            status, payload, _ = http_post(f"{base}/jobs", scenario_body(0))
            assert status == 200 and payload["cached"], payload
            recovered = wait_done(base, payload["id"])
            assert recovered["outcome"] == done["outcome"]
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate()

    def test_sigterm_exits_zero_with_no_traffic(self, tmp_path):
        proc, _, _ = self.start_server(self.serve_args(tmp_path / "idle.jsonl"))
        try:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "drained" in out
