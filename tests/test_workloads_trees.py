"""Tests for tree workloads and the extra linear-algebra DAGs."""

import pytest

from repro.utils import GraphError
from repro.workloads import (
    broadcast_tree,
    diamond_lattice,
    lu_dag,
    reduction_tree,
    triangular_solve_dag,
)


class TestReductionTree:
    @pytest.mark.parametrize("leaves,arity", [(2, 2), (8, 2), (9, 3), (7, 2)])
    def test_single_root(self, leaves, arity):
        g = reduction_tree(leaves, arity)
        assert g.sinks().size == 1
        assert g.sources().size == leaves

    def test_binary_task_count(self):
        # 8 leaves binary: 8 + 4 + 2 + 1 = 15 tasks.
        assert reduction_tree(8, 2).num_tasks == 15

    def test_every_internal_node_has_children(self):
        g = reduction_tree(8, 2)
        for t in range(8, g.num_tasks):
            assert g.predecessors(t).size == 2

    def test_odd_leaf_count(self):
        g = reduction_tree(5, 2)
        assert g.sinks().size == 1
        assert g.sources().size == 5

    def test_single_leaf(self):
        g = reduction_tree(1)
        assert g.num_tasks == 1

    def test_bad_args(self):
        with pytest.raises(GraphError):
            reduction_tree(0)
        with pytest.raises(GraphError):
            reduction_tree(4, arity=1)


class TestBroadcastTree:
    def test_mirror_of_reduction(self):
        r = reduction_tree(8, 2)
        b = broadcast_tree(8, 2)
        assert b.num_tasks == r.num_tasks
        assert b.num_edges == r.num_edges
        assert b.sources().size == 1
        assert b.sinks().size == 8

    def test_root_is_task_zero(self):
        b = broadcast_tree(4, 2)
        assert b.sources().tolist() == [0]

    def test_same_critical_path_as_reduction(self):
        assert (
            broadcast_tree(16, 2).critical_path_length()
            == reduction_tree(16, 2).critical_path_length()
        )


class TestDiamond:
    def test_structure(self):
        g = diamond_lattice(5)
        assert g.num_tasks == 7
        assert g.num_edges == 10
        assert g.sources().size == 1
        assert g.sinks().size == 1

    def test_critical_path(self):
        g = diamond_lattice(3, task_size=4, comm=2)
        assert g.critical_path_length() == 1 + 2 + 4 + 2 + 1

    def test_bad_width(self):
        with pytest.raises(GraphError):
            diamond_lattice(0)


class TestLuDag:
    @pytest.mark.parametrize("t", [1, 2, 3, 4])
    def test_task_count(self, t):
        # Per step k: 1 GETRF + 2*(t-1-k) TRSM + (t-1-k)^2 GEMM.
        expected = sum(1 + 2 * (t - 1 - k) + (t - 1 - k) ** 2 for k in range(t))
        assert lu_dag(t).num_tasks == expected

    def test_connected(self):
        assert lu_dag(4).is_connected()

    def test_single_entry(self):
        assert lu_dag(4).sources().size == 1

    def test_bad_tiles(self):
        with pytest.raises(GraphError):
            lu_dag(0)


class TestTriangularSolve:
    def test_structure(self):
        g = triangular_solve_dag(5)
        assert g.num_tasks == 5
        assert g.num_edges == 10  # complete forward dependence

    def test_nearly_serial_bound(self):
        """The chain structure keeps the clustered lower bound close to
        the serial time when everything lands in one cluster."""
        from repro.core import ClusteredGraph, Clustering, lower_bound

        g = triangular_solve_dag(6)
        one = ClusteredGraph(g, Clustering([0] * 6))
        assert lower_bound(one) == g.total_work

    def test_sizes_grow_with_row(self):
        g = triangular_solve_dag(4, flop_cost=2)
        assert g.task_sizes.tolist() == [2, 4, 6, 8]

    def test_bad_size(self):
        with pytest.raises(GraphError):
            triangular_solve_dag(0)
