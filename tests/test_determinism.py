"""Determinism regressions: durable identity never depends on ``hash()``.

``Assignment.__hash__`` is documented as *in-process-only* — it feeds
dict/set membership inside one interpreter and nothing else.  Everything
durable (result-store keys, cache fingerprints) derives from the SHA-256
of canonical JSON in :mod:`repro.service.fingerprint`.  These tests pin
that contract:

* fingerprints are identical across interpreters launched with
  different ``PYTHONHASHSEED`` values (builtin ``hash()`` is not);
* the store writes the fingerprint verbatim as its JSONL record key;
* equal content gives equal fingerprints, changed content changes them.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.api.scenario import Scenario
from repro.core.assignment import Assignment
from repro.service.fingerprint import canonical_json, scenario_fingerprint
from repro.service.store import MapOutcome, ResultStore

REPO_ROOT = Path(__file__).resolve().parents[1]

_FINGERPRINT_SNIPPET = """
import json
from repro.api.scenario import Scenario
from repro.service.fingerprint import canonical_json, scenario_fingerprint

scenario = Scenario(
    workload="broadcast_tree",
    topology="mesh",
    mapper="critical",
    workload_params={"nodes": 15},
    seed=7,
)
print(json.dumps({
    "scenario": scenario_fingerprint(scenario, replica=2),
    "canonical": canonical_json({"b": 1, "a": [2, {"z": 3, "y": 4}]}),
}))
"""


def _fingerprints_with_hash_seed(seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    out = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SNIPPET],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout)


def test_fingerprints_survive_hash_randomization():
    a = _fingerprints_with_hash_seed("0")
    b = _fingerprints_with_hash_seed("1")
    c = _fingerprints_with_hash_seed("random")
    assert a == b == c


def test_fingerprint_shape_and_content_addressing():
    base = Scenario(workload="broadcast_tree", topology="mesh", seed=0)
    fp = scenario_fingerprint(base)
    assert len(fp) == 64 and set(fp) <= set("0123456789abcdef")
    # Separately constructed but equal content -> equal fingerprint.
    again = Scenario(workload="broadcast_tree", topology="mesh", seed=0)
    assert scenario_fingerprint(again) == fp
    # Any content change -> a different fingerprint.
    assert scenario_fingerprint(Scenario(workload="broadcast_tree", topology="mesh", seed=1)) != fp
    assert scenario_fingerprint(base, replica=1) != fp


def test_canonical_json_is_order_insensitive():
    assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})


def test_store_key_is_the_fingerprint_verbatim(tmp_path):
    path = tmp_path / "results.jsonl"
    fp = scenario_fingerprint(Scenario(workload="broadcast_tree", topology="mesh"))
    outcome = MapOutcome(
        mapper="critical",
        assignment=Assignment([0, 1, 2, 3]),
        total_time=10,
        lower_bound=8,
        evaluations=4,
        reached_lower_bound=False,
        wall_time=0.5,
    )
    store = ResultStore(str(path))
    assert store.put(fp, outcome)
    store.close()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    keys = {r["fingerprint"] for r in records}
    assert keys == {fp}

    reopened = ResultStore(str(path))
    assert reopened.get(fp) is not None
    reopened.close()


def test_assignment_hash_is_in_process_only_by_construction():
    """The documented contract: dict membership works, durability doesn't rely on it."""
    a, b = Assignment([1, 0, 2]), Assignment([1, 0, 2])
    assert a == b and hash(a) == hash(b)
    assert {a: "x"}[b] == "x"
