"""Edge cases and failure injection across subsystems.

Degenerate instances (single task, single processor, no edges, maximal
clustering), boundary parameters, and interactions between the fidelity
knobs — the inputs most likely to expose off-by-one and empty-collection
bugs.
"""

import numpy as np
import pytest

from repro.baselines import anneal_mapping, average_random_mapping
from repro.core import (
    Assignment,
    ClusteredGraph,
    Clustering,
    CriticalEdgeMapper,
    DeltaEvaluator,
    IncrementalEvaluator,
    TaskGraph,
    analyze_criticality,
    evaluate_assignment,
    ideal_schedule,
    list_schedule,
    lower_bound,
    total_time,
    verify_schedule,
)
from repro.utils import GraphError, MappingError
from repro.core.refine import refine_random
from repro.sim import SimConfig, simulate
from repro.topology import SystemGraph, chain, complete, ring
from repro.workloads import layered_random_dag


def _one_node_system() -> SystemGraph:
    return SystemGraph(np.zeros((1, 1), dtype=int))


class TestDegenerateInstances:
    def test_single_task_single_processor(self):
        g = TaskGraph([7])
        cg = ClusteredGraph(g, Clustering([0]))
        system = _one_node_system()
        result = CriticalEdgeMapper(rng=0).map(cg, system)
        assert result.total_time == 7
        assert result.is_provably_optimal

    def test_single_task_pipeline_everything(self):
        g = TaskGraph([3])
        cg = ClusteredGraph(g, Clustering([0]))
        system = _one_node_system()
        a = Assignment.identity(1)
        assert total_time(cg, system, a) == 3
        assert simulate(cg, system, a).makespan == 3
        assert list_schedule(cg, system, a).makespan == 3
        inc = IncrementalEvaluator(cg, system, a)
        assert inc.total_time == 3

    def test_edgeless_graph_bound_is_max_task(self):
        g = TaskGraph([2, 9, 4, 1])
        cg = ClusteredGraph(g, Clustering([0, 1, 2, 3]))
        assert lower_bound(cg) == 9
        # Any assignment achieves it (no communication at all).
        result = CriticalEdgeMapper(rng=0).map(cg, ring(4))
        assert result.total_time == 9
        assert result.is_provably_optimal

    def test_no_critical_edges_on_edgeless_graph(self):
        g = TaskGraph([2, 9, 4])
        cg = ClusteredGraph(g, Clustering([0, 1, 2]))
        an = analyze_criticality(cg)
        assert not an.crit_mask.any()
        assert an.on_critical_path.tolist() == [False, True, False]

    def test_all_tasks_one_cluster_one_processor(self):
        g = layered_random_dag(num_tasks=20, rng=0)
        cg = ClusteredGraph(g, Clustering([0] * 20))
        system = _one_node_system()
        result = CriticalEdgeMapper(rng=0).map(cg, system)
        # All comm internal: bound equals node-weight critical path.
        assert result.is_provably_optimal

    def test_two_tasks_two_processors(self):
        g = TaskGraph([1, 1], [(0, 1, 5)])
        cg = ClusteredGraph(g, Clustering([0, 1]))
        system = chain(2)
        result = CriticalEdgeMapper(rng=0).map(cg, system)
        assert result.total_time == 1 + 5 + 1
        assert result.is_provably_optimal


class TestDegenerateGraphValidation:
    """Degenerate task graphs must fail loudly with typed errors — or
    evaluate correctly — never crash with a raw numpy traceback."""

    def test_empty_task_list_rejected(self):
        with pytest.raises(GraphError, match="at least one task"):
            TaskGraph([])

    def test_self_loop_triple_rejected_regardless_of_weight(self):
        # Regression: a zero-weight self-loop used to report the
        # misleading "must have positive weight" instead of "self-loop".
        with pytest.raises(GraphError, match="self-loop"):
            TaskGraph([1, 1], [(0, 0, 2)])
        with pytest.raises(GraphError, match="self-loop"):
            TaskGraph([1, 1], [(0, 0, 0)])

    def test_zero_weight_edge_triple_rejected_with_guidance(self):
        with pytest.raises(GraphError, match="zero"):
            TaskGraph([1, 1], [(0, 1, 0)])

    def test_zero_matrix_entries_mean_no_edge(self):
        # The matrix form's explicit convention: 0 == absent, and the
        # edgeless graph scores as pure independent work everywhere.
        g = TaskGraph([2, 5], np.zeros((2, 2), dtype=int))
        assert g.num_edges == 0
        cg = ClusteredGraph(g, Clustering([0, 1]))
        system = chain(2)
        a = Assignment.identity(2)
        assert total_time(cg, system, a) == 5
        verify_schedule(evaluate_assignment(cg, system, a))
        assert DeltaEvaluator(cg, system, a).total_time == 5

    def test_single_task_through_delta_evaluator(self):
        g = TaskGraph([4])
        cg = ClusteredGraph(g, Clustering([0]))
        ev = DeltaEvaluator(cg, _one_node_system(), Assignment.identity(1))
        assert ev.total_time == 4
        assert ev.comm_volume == 0
        assert ev.loads().tolist() == [4]
        assert ev.probe_swap(0, 0) == 4
        assert ev.verify()

    def test_mismatched_assignment_raises_mapping_error(self):
        # Regression: IncrementalEvaluator used to crash with IndexError.
        g = TaskGraph([1, 1, 1], [(0, 1, 2), (1, 2, 2)])
        cg = ClusteredGraph(g, Clustering([0, 1, 2]))
        with pytest.raises(MappingError, match="assignment covers"):
            IncrementalEvaluator(cg, chain(3), Assignment.identity(2))

    def test_cluster_count_must_match_system(self):
        g = TaskGraph([1, 1, 1], [(0, 1, 2), (1, 2, 2)])
        cg = ClusteredGraph(g, Clustering([0, 1, 2]))
        with pytest.raises(MappingError, match="na must equal ns"):
            DeltaEvaluator(cg, chain(2), Assignment.identity(2))
        with pytest.raises(MappingError, match="na must equal ns"):
            total_time(cg, chain(2), Assignment.identity(2))


class TestRefinementBoundaries:
    def test_zero_trial_budget(self):
        g = layered_random_dag(num_tasks=30, rng=1)
        cg = ClusteredGraph(g, Clustering(np.arange(30) % 5, num_clusters=5))
        system = ring(5)
        from repro.core import AbstractGraph, initial_assignment

        an = analyze_criticality(cg)
        init = initial_assignment(AbstractGraph(cg), an, system, rng=1)
        result = refine_random(cg, system, an, init, rng=1, max_trials=0)
        assert result.trials == 0
        assert result.assignment == init

    def test_all_clusters_pinned_leaves_nothing_movable(self):
        """A fully critical 3-cluster chain on a triangle: every cluster
        pinned, refinement is a no-op."""
        g = TaskGraph([1, 1, 1], [(0, 1, 2), (1, 2, 2)])
        cg = ClusteredGraph(g, Clustering([0, 1, 2]))
        system = complete(3)
        from repro.core import AbstractGraph, initial_assignment

        an = analyze_criticality(cg)
        init = initial_assignment(AbstractGraph(cg), an, system, rng=0)
        result = refine_random(cg, system, an, init, rng=0)
        # On the closure the initial assignment hits the bound anyway.
        assert result.reached_lower_bound


class TestSimKnobInteractions:
    def test_setup_with_contention(self):
        g = layered_random_dag(num_tasks=40, rng=2)
        cg = ClusteredGraph(g, Clustering(np.arange(40) % 4, num_clusters=4))
        system = ring(4)
        a = Assignment.random(4, rng=2)
        plain = simulate(cg, system, a, SimConfig(link_contention=True))
        with_setup = simulate(
            cg, system, a, SimConfig(link_contention=True, link_setup=2)
        )
        assert with_setup.makespan >= plain.makespan

    def test_setup_monotone(self):
        g = layered_random_dag(num_tasks=40, rng=3)
        cg = ClusteredGraph(g, Clustering(np.arange(40) % 4, num_clusters=4))
        system = ring(4)
        a = Assignment.random(4, rng=3)
        spans = [
            simulate(cg, system, a, SimConfig(link_setup=s)).makespan
            for s in (0, 1, 3)
        ]
        assert spans == sorted(spans)

    def test_all_knobs_together_run_clean(self):
        g = layered_random_dag(num_tasks=50, rng=4)
        cg = ClusteredGraph(g, Clustering(np.arange(50) % 6, num_clusters=6))
        system = ring(6)
        a = Assignment.random(6, rng=4)
        sim = simulate(cg, system, a, SimConfig(True, True, link_setup=2))
        assert sim.makespan >= total_time(cg, system, a)
        assert len(sim.trace.tasks) == 50


class TestAnnealingBoundaries:
    def test_two_node_instance(self):
        g = TaskGraph([1, 1], [(0, 1, 3)])
        cg = ClusteredGraph(g, Clustering([0, 1]))
        system = chain(2)
        result = anneal_mapping(cg, system, rng=0)
        assert result.total_time == 5  # both assignments equivalent

    def test_zero_moves(self):
        g = layered_random_dag(num_tasks=20, rng=5)
        cg = ClusteredGraph(g, Clustering(np.arange(20) % 4, num_clusters=4))
        result = anneal_mapping(
            cg, ring(4), rng=5, moves_per_temperature=0, min_temperature=0.99,
            initial_temperature=1.0,
        )
        assert result.total_time >= lower_bound(cg)


class TestIdealScheduleEdgeCases:
    def test_heavier_clustering_of_same_instance(self):
        """Fully-clustered graphs have no inter-cluster edges at all."""
        g = layered_random_dag(num_tasks=25, rng=6)
        cg = ClusteredGraph(g, Clustering([0] * 25))
        ideal = ideal_schedule(cg)
        an = analyze_criticality(cg)
        # All critical edges are intra-cluster: zero abstract weight.
        assert an.c_abs_edge.sum() == 0
        assert ideal.total_time == lower_bound(cg)

    def test_evaluate_on_closure_equals_ideal_always(self):
        for seed in range(4):
            g = layered_random_dag(num_tasks=30, rng=seed)
            cg = ClusteredGraph(g, Clustering(np.arange(30) % 6, num_clusters=6))
            ideal = ideal_schedule(cg)
            sched = evaluate_assignment(
                cg, complete(6), Assignment.random(6, rng=seed)
            )
            assert sched.total_time == ideal.total_time


class TestRandomMappingDegenerate:
    def test_single_processor_stats(self):
        g = TaskGraph([2, 3])
        cg = ClusteredGraph(g, Clustering([0, 0]))
        stats = average_random_mapping(cg, _one_node_system(), samples=3, rng=0)
        assert stats.best_total_time == stats.worst_total_time == 3
