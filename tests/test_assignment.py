"""Unit tests for repro.core.assignment."""

import numpy as np
import pytest

from repro.core import Assignment, ClusteredGraph, Clustering, communication_matrix
from repro.topology import chain, ring
from repro.utils import MappingError


class TestAssignment:
    def test_identity(self):
        a = Assignment.identity(4)
        assert a.assi.tolist() == [0, 1, 2, 3]
        assert a.system_of(2) == 2
        assert a.cluster_on(3) == 3

    def test_orientation(self):
        a = Assignment([2, 0, 1])  # system 0 hosts cluster 2, ...
        assert a.cluster_on(0) == 2
        assert a.system_of(2) == 0
        assert a.placement.tolist() == [1, 2, 0]

    def test_from_placement_inverse(self):
        a = Assignment.from_placement([1, 2, 0])
        assert a.system_of(0) == 1
        assert a.assi.tolist() == [2, 0, 1]

    def test_round_trip(self):
        a = Assignment([3, 1, 0, 2])
        assert Assignment.from_placement(a.placement) == a

    def test_non_permutation_rejected(self):
        with pytest.raises(MappingError):
            Assignment([0, 0, 1])
        with pytest.raises(MappingError):
            Assignment([0, 1, 3])

    def test_random_is_permutation(self):
        for seed in range(5):
            a = Assignment.random(6, rng=seed)
            assert sorted(a.assi.tolist()) == list(range(6))

    def test_random_deterministic_by_seed(self):
        assert Assignment.random(8, rng=42) == Assignment.random(8, rng=42)

    def test_swapped(self):
        a = Assignment.identity(4)
        b = a.swapped(0, 3)
        assert b.system_of(0) == 3
        assert b.system_of(3) == 0
        assert b.system_of(1) == 1
        assert a.system_of(0) == 0  # original untouched

    def test_swap_self_rejected(self):
        with pytest.raises(MappingError):
            Assignment.identity(3).swapped(1, 1)

    def test_with_placement_updates(self):
        a = Assignment.identity(4)
        b = a.with_placement_updates({0: 2, 2: 0})
        assert b.system_of(0) == 2
        assert b.system_of(2) == 0
        assert b.system_of(1) == 1

    def test_with_placement_updates_must_stay_permutation(self):
        with pytest.raises(MappingError):
            Assignment.identity(3).with_placement_updates({0: 1})

    def test_hashable(self):
        a, b = Assignment([0, 1, 2]), Assignment([0, 1, 2])
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_arrays_read_only(self):
        a = Assignment.identity(3)
        with pytest.raises(ValueError):
            a.assi[0] = 2


class TestCommunicationMatrix:
    def test_hops_multiply_weights(self, diamond_clustered):
        # chain topology 0-1-2-3; identity placement.
        system = chain(4)
        comm = communication_matrix(diamond_clustered, system, Assignment.identity(4))
        assert comm[0, 1] == 1 * 1  # adjacent
        assert comm[0, 2] == 2 * 2  # two hops
        assert comm[1, 3] == 2 * 2
        assert comm[2, 3] == 1 * 1

    def test_intra_cluster_is_free(self, diamond_graph):
        cg = ClusteredGraph(diamond_graph, Clustering([0, 0, 1, 1]))
        system = chain(2)
        comm = communication_matrix(cg, system, Assignment.identity(2))
        assert comm[0, 1] == 0
        assert comm[2, 3] == 0
        assert comm[0, 2] == 2  # inter, adjacent

    def test_closure_reproduces_clustered_weights(self, diamond_clustered):
        from repro.topology import complete

        comm = communication_matrix(
            diamond_clustered, complete(4), Assignment.identity(4)
        )
        assert np.array_equal(comm, diamond_clustered.clus_edge)

    def test_na_ns_mismatch_rejected(self, diamond_clustered):
        with pytest.raises(MappingError, match="na must equal ns"):
            communication_matrix(diamond_clustered, ring(5), Assignment.identity(5))

    def test_assignment_size_mismatch_rejected(self, diamond_clustered, ring4):
        with pytest.raises(MappingError):
            communication_matrix(diamond_clustered, ring4, Assignment.identity(5))

    def test_placement_changes_distances(self, diamond_clustered):
        system = chain(4)
        near = communication_matrix(diamond_clustered, system, Assignment.identity(4))
        # Put clusters 0 and 2 at the two chain ends: distance 3.
        far = communication_matrix(
            diamond_clustered, system, Assignment.from_placement([0, 1, 3, 2])
        )
        assert far[0, 2] == 2 * 3
        assert near[0, 2] == 2 * 2
