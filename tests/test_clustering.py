"""Unit tests for the repro.clustering package (all clusterers)."""

import numpy as np
import pytest

from repro.clustering import (
    BandClusterer,
    BlockClusterer,
    Clusterer,
    EdgeZeroClusterer,
    LinearClusterer,
    LoadBalanceClusterer,
    RandomClusterer,
    RoundRobinClusterer,
    rebalance_empty_clusters,
)
from repro.core import ClusteredGraph, Clustering, TaskGraph, lower_bound
from repro.utils import GraphError
from repro.workloads import layered_random_dag

ALL_CLUSTERERS = [
    RandomClusterer,
    RoundRobinClusterer,
    BlockClusterer,
    BandClusterer,
    LoadBalanceClusterer,
    EdgeZeroClusterer,
    LinearClusterer,
]


@pytest.fixture(scope="module")
def workload():
    return layered_random_dag(num_tasks=48, rng=11)


class TestCommonContract:
    @pytest.mark.parametrize("cls", ALL_CLUSTERERS)
    def test_partition_valid(self, cls, workload):
        clustering = cls(num_clusters=6).cluster(workload, rng=4)
        assert clustering.num_clusters == 6
        assert clustering.num_tasks == workload.num_tasks
        assert (clustering.sizes() > 0).all()

    @pytest.mark.parametrize("cls", ALL_CLUSTERERS)
    def test_single_cluster(self, cls, workload):
        clustering = cls(num_clusters=1).cluster(workload, rng=4)
        assert clustering.num_clusters == 1

    @pytest.mark.parametrize("cls", ALL_CLUSTERERS)
    def test_as_many_clusters_as_tasks(self, cls):
        g = layered_random_dag(num_tasks=8, rng=2)
        clustering = cls(num_clusters=8).cluster(g, rng=2)
        assert clustering.sizes().tolist() == [1] * 8

    @pytest.mark.parametrize("cls", ALL_CLUSTERERS)
    def test_too_many_clusters_rejected(self, cls, workload):
        with pytest.raises(GraphError):
            cls(num_clusters=1000).cluster(workload)

    @pytest.mark.parametrize("cls", ALL_CLUSTERERS)
    def test_zero_clusters_rejected(self, cls):
        with pytest.raises(GraphError):
            cls(num_clusters=0)

    @pytest.mark.parametrize("cls", ALL_CLUSTERERS)
    def test_usable_by_mapper(self, cls, workload):
        from repro.core import CriticalEdgeMapper
        from repro.topology import hypercube

        clustering = cls(num_clusters=8).cluster(workload, rng=4)
        result = CriticalEdgeMapper(rng=4).map(
            ClusteredGraph(workload, clustering), hypercube(3)
        )
        assert result.total_time >= result.lower_bound


class TestRandomClusterer:
    def test_deterministic_by_seed(self, workload):
        a = RandomClusterer(6).cluster(workload, rng=1)
        b = RandomClusterer(6).cluster(workload, rng=1)
        assert a == b

    def test_seeds_differ(self, workload):
        a = RandomClusterer(6).cluster(workload, rng=1)
        b = RandomClusterer(6).cluster(workload, rng=2)
        assert a != b


class TestRoundRobinAndBlock:
    def test_round_robin_labels(self, workload):
        c = RoundRobinClusterer(4).cluster(workload)
        assert c.labels.tolist() == [t % 4 for t in range(workload.num_tasks)]

    def test_block_labels_contiguous(self, workload):
        c = BlockClusterer(4).cluster(workload)
        labels = c.labels
        assert (np.diff(labels) >= 0).all()  # non-decreasing

    def test_block_balanced(self):
        g = layered_random_dag(num_tasks=10, rng=0)
        c = BlockClusterer(3).cluster(g)
        assert sorted(c.sizes().tolist()) == [3, 3, 4]


class TestBandClusterer:
    def test_bands_respect_depth_order(self):
        g = TaskGraph([1] * 6, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 5, 1)])
        c = BandClusterer(3).cluster(g)
        # A 6-chain in 3 bands: first two tasks band 0, etc.
        assert c.labels.tolist() == [0, 0, 1, 1, 2, 2]


class TestLoadBalance:
    def test_load_balanced(self, workload):
        c = LoadBalanceClusterer(4, affinity_weight=0.0).cluster(workload)
        loads = c.load(workload)
        # Pure LPT on 4 bins: max/min within the largest task size.
        assert loads.max() - loads.min() <= workload.task_sizes.max()

    def test_affinity_reduces_cut(self, workload):
        blind = LoadBalanceClusterer(4, affinity_weight=0.0).cluster(workload)
        fond = LoadBalanceClusterer(4, affinity_weight=5.0).cluster(workload)
        cut_blind = ClusteredGraph(workload, blind).cut_weight()
        cut_fond = ClusteredGraph(workload, fond).cut_weight()
        assert cut_fond <= cut_blind

    def test_negative_affinity_rejected(self):
        with pytest.raises(ValueError):
            LoadBalanceClusterer(4, affinity_weight=-1)


class TestEdgeZero:
    def test_reduces_cut_vs_random(self, workload):
        ez = EdgeZeroClusterer(6).cluster(workload, rng=0)
        rnd = RandomClusterer(6).cluster(workload, rng=0)
        assert (
            ClusteredGraph(workload, ez).cut_weight()
            <= ClusteredGraph(workload, rnd).cut_weight()
        )

    def test_never_worse_bound_than_singletons(self, workload):
        """Edge zeroing only merges when the estimate does not regress, so
        its bound can't exceed the all-singleton (unclustered) bound."""
        ez = EdgeZeroClusterer(6).cluster(workload, rng=0)
        singleton_bound = lower_bound(
            ClusteredGraph(workload, Clustering(np.arange(workload.num_tasks)))
        )
        assert lower_bound(ClusteredGraph(workload, ez)) <= singleton_bound


class TestLinear:
    def test_clusters_are_chains(self):
        """Every linear cluster must be totally ordered by reachability
        (no two independent tasks together) — except the dump-tail last
        cluster."""
        g = layered_random_dag(num_tasks=30, rng=5)
        c = LinearClusterer(6).cluster(g, rng=5)
        import networkx as nx

        nxg = g.to_networkx()
        reach = {t: nx.descendants(nxg, t) for t in range(g.num_tasks)}
        for cluster in range(c.num_clusters - 1):  # skip the tail cluster
            members = c.members(cluster).tolist()
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    assert b in reach[a] or a in reach[b]

    def test_first_cluster_is_critical_path(self):
        g = TaskGraph([1, 5, 1, 1], [(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)])
        c = LinearClusterer(2).cluster(g)
        # Longest path 0 -> 1 -> 3 (weights 1+1+5+1+1 = 9) is peeled first;
        # the tail cluster absorbs the rest.
        assert set(c.members(0).tolist()) == {0, 1, 3}
        assert set(c.members(1).tolist()) == {2}


class TestRebalance:
    def test_fills_empty_clusters(self):
        g = layered_random_dag(num_tasks=10, rng=1)
        labels = np.zeros(10, dtype=np.int64)  # everything in cluster 0
        fixed = rebalance_empty_clusters(labels, 3, g)
        counts = np.bincount(fixed, minlength=3)
        assert (counts > 0).all()

    def test_noop_when_already_valid(self):
        g = layered_random_dag(num_tasks=6, rng=1)
        labels = np.asarray([0, 1, 2, 0, 1, 2], dtype=np.int64)
        assert np.array_equal(rebalance_empty_clusters(labels, 3, g), labels)
