"""CSR edge cases and python/array backend equivalence.

The CSR :class:`~repro.core.TaskGraph` and the ``backend="array"``
evaluators are only allowed to be *faster* than the scalar originals,
never different.  This module pins the degenerate shapes (no edges,
one task, disconnected components, duplicate edges) and formalizes the
randomized backend-equivalence walks — including deep
``apply_swap``/``revert`` undo stacks — as tier-1 tests.
"""

import numpy as np
import pytest

from repro.clustering import RandomClusterer
from repro.core import (
    Assignment,
    ClusteredGraph,
    DeltaEvaluator,
    TaskGraph,
    evaluate_assignment,
)
from repro.core.incremental import CommVolumeDelta
from repro.topology import chain, hypercube, mesh2d, ring
from repro.utils import GraphError
from repro.workloads import layered_random_dag


class TestCsrEdgeCases:
    def test_edgeless_graph(self):
        g = TaskGraph([1, 2, 3])
        assert g.num_edges == 0
        assert g.out_indptr.tolist() == [0, 0, 0, 0]
        assert g.in_indptr.tolist() == [0, 0, 0, 0]
        assert g.total_comm == 0
        assert g.critical_path_length() == 3  # heaviest isolated task
        assert sorted(g.sources().tolist()) == [0, 1, 2]
        assert sorted(g.sinks().tolist()) == [0, 1, 2]

    def test_zero_tasks_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([])

    def test_single_task(self):
        g = TaskGraph([5])
        assert g.num_tasks == 1
        assert g.num_edges == 0
        assert g.critical_path_length() == 5
        assert g.sources().tolist() == [0]
        assert g.sinks().tolist() == [0]
        assert g.topological_order.tolist() == [0]

    def test_disconnected_components(self):
        # Two independent chains: 0 -> 1 and 2 -> 3.
        g = TaskGraph([1, 1, 1, 1], [(0, 1, 2), (2, 3, 4)])
        assert g.num_edges == 2
        assert g.total_comm == 6
        assert g.out_indptr.tolist() == [0, 1, 1, 2, 2]
        assert g.in_indptr.tolist() == [0, 0, 1, 1, 2]
        assert g.successors(1).size == 0
        assert g.predecessors(2).size == 0
        assert g.successors(0).tolist() == [1]
        assert g.predecessors(3).tolist() == [2]
        # Both components land in the schedule; neither hides the other.
        assert g.critical_path_length() == 6

    def test_duplicate_edge_rejected_by_triples(self):
        with pytest.raises(GraphError, match="duplicate edge"):
            TaskGraph([1, 1], [(0, 1, 2), (0, 1, 3)])

    def test_duplicate_edge_rejected_by_edge_arrays(self):
        with pytest.raises(GraphError, match="duplicate edge"):
            TaskGraph.from_edge_arrays(
                [1, 1],
                np.array([0, 0]),
                np.array([1, 1]),
                np.array([2, 3]),
            )

    def test_disconnected_graph_evaluates_on_both_backends(self):
        g = TaskGraph([2, 3, 1, 4], [(0, 1, 2), (2, 3, 4)])
        clustering = RandomClusterer(num_clusters=2).cluster(g, rng=3)
        clustered = ClusteredGraph(g, clustering)
        system = chain(2)
        assignment = Assignment.random(2, rng=0)
        schedule = evaluate_assignment(clustered, system, assignment)
        for backend in ("python", "array"):
            ev = DeltaEvaluator(clustered, system, assignment, backend=backend)
            assert ev.total_time == schedule.total_time
            assert ev.verify()


def _instance(system, seed):
    graph = layered_random_dag(num_tasks=4 * system.num_nodes, rng=seed)
    clustering = RandomClusterer(system.num_nodes).cluster(graph, rng=seed)
    return ClusteredGraph(graph, clustering)


SYSTEMS = [
    ("hypercube", lambda: hypercube(3)),
    ("mesh2d", lambda: mesh2d(3, 3)),
    ("ring", lambda: ring(6)),
]


class TestBackendEquivalenceUnderRevert:
    """Lockstep python-vs-array walks with deep apply/revert chains.

    The walk interleaves probes and commits with speculative
    ``apply_swap`` chains that are then fully unwound by ``revert()``,
    so the undo stack itself is exercised on both backends at every
    depth; after every operation all observable aggregates must agree
    bit for bit.
    """

    @pytest.mark.parametrize("name,factory", SYSTEMS, ids=[n for n, _ in SYSTEMS])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_lockstep_walk(self, name, factory, seed):
        system = factory()
        clustered = _instance(system, seed)
        n = system.num_nodes
        start = Assignment.random(n, rng=seed)
        py = DeltaEvaluator(clustered, system, start, backend="python")
        ar = DeltaEvaluator(clustered, system, start, backend="array")
        gen = np.random.default_rng(900 + seed)
        depth = 0
        for step in range(60):
            a, b = (int(x) for x in gen.choice(n, size=2, replace=False))
            op = int(gen.integers(0, 5))
            if op == 0:
                assert py.probe_swap(a, b) == ar.probe_swap(a, b)
            elif op == 1:
                # A plain commit invalidates (clears) the undo stack.
                assert py.swap(a, b) == ar.swap(a, b)
                depth = 0
            elif op == 2:
                assert py.apply_swap(a, b) == ar.apply_swap(a, b)
                depth += 1
            elif op == 3 and depth:
                assert py.revert() == ar.revert()
                depth -= 1
            else:
                fresh = Assignment.random(n, rng=int(gen.integers(0, 2**31)))
                assert py.evaluate(fresh) == ar.evaluate(fresh)
                depth = 0
            assert py.total_time == ar.total_time, f"{name} step {step}"
            assert py.comm_volume == ar.comm_volume
            assert np.array_equal(py.assignment.assi, ar.assignment.assi)
        # Unwind whatever speculation is still open: both stacks must
        # pop identically all the way down.
        while depth:
            assert py.revert() == ar.revert()
            depth -= 1
        assert py.verify() and ar.verify()
        assert np.array_equal(py.end_times(), ar.end_times())
        assert np.array_equal(py.loads(), ar.loads())

    def test_revert_restores_across_full_stack(self):
        system = hypercube(3)
        clustered = _instance(system, seed=5)
        n = system.num_nodes
        start = Assignment.random(n, rng=5)
        for backend in ("python", "array"):
            ev = DeltaEvaluator(clustered, system, start, backend=backend)
            before = (ev.total_time, ev.comm_volume, ev.assignment.assi.copy())
            gen = np.random.default_rng(42)
            pushes = 8
            for _ in range(pushes):
                a, b = (int(x) for x in gen.choice(n, size=2, replace=False))
                ev.apply_swap(a, b)
            for _ in range(pushes):
                ev.revert()
            assert ev.total_time == before[0]
            assert ev.comm_volume == before[1]
            assert np.array_equal(ev.assignment.assi, before[2])
            assert ev.verify()


class TestCommVolumeDeltaBulk:
    """The gain-table batch path must match the scalar swap deltas."""

    def test_delta_swaps_matches_scalar(self):
        system = hypercube(3)
        clustered = _instance(system, seed=2)
        from repro.core import AbstractGraph

        abstract = AbstractGraph(clustered)
        assignment = Assignment.random(system.num_nodes, rng=2)
        ev = CommVolumeDelta(abstract.abs_edge, system, assignment)
        n = system.num_nodes
        gen = np.random.default_rng(7)
        for _ in range(10):
            cluster = int(gen.integers(0, n))
            procs = np.array(
                [p for p in range(n) if int(ev.occupant_view[p]) != cluster],
                dtype=np.int64,
            )
            bulk = ev.delta_swaps(cluster, procs)
            for proc, delta in zip(procs.tolist(), bulk.tolist()):
                other = int(ev.occupant_view[proc])
                assert delta == ev.delta_swap(cluster, other)
            a, b = (int(x) for x in gen.choice(n, size=2, replace=False))
            ev.swap(a, b)
