"""The public API's docstring examples must run (and stay current).

Every example in the ``repro.api`` surface — ``solve``, ``solve_many``,
``compare``, ``Scenario``, ``run_scenarios`` — is executed as a doctest
here, so a signature change that would break the documented usage fails
the suite instead of silently rotting in prose.
"""

import doctest

import pytest

import repro.api.batch
import repro.api.facade
import repro.api.scenario
import repro.api.sweep

MODULES = [
    repro.api.facade,
    repro.api.batch,
    repro.api.scenario,
    repro.api.sweep,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(
        module,
        optionflags=doctest.ELLIPSIS | doctest.IGNORE_EXCEPTION_DETAIL,
        verbose=False,
    )
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"


def test_public_surface_has_examples():
    # The five documented entry points must each carry a runnable example.
    surfaces = [
        repro.api.facade.solve,
        repro.api.batch.solve_many,
        repro.api.batch.compare,
        repro.api.scenario.Scenario,
        repro.api.sweep.run_scenarios,
    ]
    for obj in surfaces:
        examples = doctest.DocTestFinder().find(obj)
        assert any(t.examples for t in examples), f"{obj.__name__} has no doctest"
