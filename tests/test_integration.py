"""Integration tests: whole-pipeline scenarios across subsystems."""

import numpy as np
import pytest

from repro.baselines import average_random_mapping, exhaustive_optimum
from repro.clustering import (
    BandClusterer,
    EdgeZeroClusterer,
    LinearClusterer,
    RandomClusterer,
)
from repro.core import (
    Assignment,
    ClusteredGraph,
    CriticalEdgeMapper,
    collect_matrices,
    evaluate_assignment,
    map_graph,
)
from repro.io import load_instance, save_instance
from repro.sim import SimConfig, simulate
from repro.topology import by_name, hypercube, mesh2d, ring, torus2d
from repro.workloads import (
    cholesky_dag,
    fft_dag,
    gaussian_elimination_dag,
    layered_random_dag,
    wavefront_dag,
)


class TestDomainWorkloads:
    """Every domain DAG flows through the full pipeline sensibly."""

    @pytest.mark.parametrize(
        "graph",
        [
            gaussian_elimination_dag(8),
            cholesky_dag(4),
            wavefront_dag(5, 5),
            fft_dag(3),
        ],
        ids=["gauss", "cholesky", "wavefront", "fft"],
    )
    def test_pipeline_on_domain_dag(self, graph):
        system = mesh2d(2, 3)
        clustering = BandClusterer(system.num_nodes).cluster(graph, rng=0)
        result = map_graph(graph, clustering, system, rng=0)
        assert result.lower_bound <= result.total_time
        # DES in paper mode agrees end to end.
        sim = simulate(result.clustered, system, result.assignment)
        assert sim.makespan == result.total_time

    def test_structure_aware_clustering_helps_gauss(self):
        """Linear clustering should beat random clustering on the mapped
        total time for Gaussian elimination (communication-dominated)."""
        graph = gaussian_elimination_dag(10)
        system = mesh2d(2, 2)
        rnd = map_graph(
            graph, RandomClusterer(4).cluster(graph, rng=1), system, rng=1
        )
        lin = map_graph(
            graph, LinearClusterer(4).cluster(graph, rng=1), system, rng=1
        )
        assert lin.total_time <= rnd.total_time


class TestHeuristicQuality:
    def test_beats_random_mean_on_aggregate(self):
        """The paper's headline: our mapping beats averaged random mapping."""
        gains = []
        for seed in range(8):
            graph = layered_random_dag(num_tasks=90, comm_range=(1, 5), rng=seed)
            system = hypercube(3)
            clustering = RandomClusterer(8).cluster(graph, rng=seed)
            clustered = ClusteredGraph(graph, clustering)
            ours = CriticalEdgeMapper(rng=seed).map(clustered, system)
            rand = average_random_mapping(clustered, system, samples=20, rng=seed)
            gains.append(rand.mean_total_time - ours.total_time)
        assert np.mean(gains) > 0

    def test_close_to_exhaustive_on_small_instances(self):
        """Within 25% of the certified optimum on 5-processor instances."""
        ratios = []
        for seed in range(6):
            graph = layered_random_dag(num_tasks=25, rng=seed)
            system = ring(5)
            clustering = RandomClusterer(5).cluster(graph, rng=seed)
            clustered = ClusteredGraph(graph, clustering)
            ours = CriticalEdgeMapper(rng=seed).map(clustered, system)
            best = exhaustive_optimum(clustered, system)
            ratios.append(ours.total_time / best.total_time)
        assert np.mean(ratios) < 1.25

    def test_termination_condition_certifies_optimality(self):
        """Whenever the lower bound is hit, exhaustive search confirms it
        is a true optimum (Theorem 3 in action)."""
        confirmed = 0
        for seed in range(20):
            graph = layered_random_dag(num_tasks=24, comm_range=(1, 3), rng=seed)
            system = by_name("mesh", 6)
            clustering = RandomClusterer(6).cluster(graph, rng=seed)
            clustered = ClusteredGraph(graph, clustering)
            result = CriticalEdgeMapper(rng=seed).map(clustered, system)
            if result.is_provably_optimal:
                best = exhaustive_optimum(clustered, system)
                assert best.total_time == result.total_time
                confirmed += 1
        # The config was chosen so at least one run hits the bound.
        assert confirmed >= 1


class TestPersistenceWorkflow:
    def test_save_map_reload_revalidate(self, tmp_path):
        """Archive an instance + solution, reload, and re-verify the time."""
        graph = layered_random_dag(num_tasks=50, rng=3)
        system = torus2d(2, 3)
        clustering = RandomClusterer(6).cluster(graph, rng=3)
        result = map_graph(graph, clustering, system, rng=3)

        path = tmp_path / "solved.json"
        save_instance(path, graph, system, clustering, result.assignment)
        g2, s2, c2, a2 = load_instance(path)
        schedule = evaluate_assignment(ClusteredGraph(g2, c2), s2, a2)
        assert schedule.total_time == result.total_time


class TestMatricesConsistency:
    def test_collect_matches_components(self):
        graph = layered_random_dag(num_tasks=30, rng=4)
        system = hypercube(2)
        clustering = RandomClusterer(4).cluster(graph, rng=4)
        clustered = ClusteredGraph(graph, clustering)
        result = CriticalEdgeMapper(rng=4).map(clustered, system)
        matrices = collect_matrices(
            clustered,
            system,
            result.assignment,
            ideal=result.ideal,
            analysis=result.analysis,
        )
        assert np.array_equal(matrices.i_start, result.ideal.i_start)
        assert np.array_equal(matrices.start, result.schedule.start)
        assert matrices.c_abs_edge[:, -1].tolist() == (
            result.analysis.critical_degree.tolist()
        )
        # comm = clus_edge * hops for every pair.
        labels = clustering.labels
        hosts = result.assignment.placement[labels]
        hops = system.shortest[np.ix_(hosts, hosts)]
        assert np.array_equal(matrices.comm, clustered.clus_edge * hops)


class TestFidelityOrdering:
    def test_modes_ordered_against_paper_model(self):
        graph = layered_random_dag(num_tasks=70, rng=5)
        system = mesh2d(2, 4)
        clustering = RandomClusterer(8).cluster(graph, rng=5)
        clustered = ClusteredGraph(graph, clustering)
        a = Assignment.random(8, rng=5)
        base = simulate(clustered, system, a).makespan
        serial = simulate(
            clustered, system, a, SimConfig(serialize_processors=True)
        ).makespan
        contention = simulate(
            clustered, system, a, SimConfig(link_contention=True)
        ).makespan
        assert serial >= base and contention >= base
