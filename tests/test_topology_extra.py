"""Tests for the extended topology families."""

import numpy as np
import pytest

from repro.topology import (
    chordal_ring,
    complete_bipartite,
    is_regular,
    kautz,
    mesh3d,
    petersen,
    random_regular,
    ring,
    torus3d,
)
from repro.utils import GraphError


class TestMesh3d:
    def test_structure(self):
        g = mesh3d(2, 3, 4)
        assert g.num_nodes == 24
        # edges: (nx-1)*ny*nz + nx*(ny-1)*nz + nx*ny*(nz-1)
        assert g.num_edges() == 1 * 3 * 4 + 2 * 2 * 4 + 2 * 3 * 3
        assert g.diameter() == 1 + 2 + 3

    def test_corner_degree(self):
        g = mesh3d(3, 3, 3)
        assert g.deg.min() == 3  # corners
        assert g.deg.max() == 6  # center

    def test_degenerate_1d(self):
        g = mesh3d(5, 1, 1)
        assert g.diameter() == 4

    def test_bad_dims(self):
        with pytest.raises(GraphError):
            mesh3d(0, 2, 2)


class TestTorus3d:
    def test_regular(self):
        g = torus3d(3, 3, 3)
        assert (g.deg == 6).all()
        assert g.diameter() == 3  # 1+1+1 wraps

    def test_size_two_dims(self):
        g = torus3d(2, 2, 2)  # wrap links coincide -> a 3-cube
        assert g.num_nodes == 8
        assert (g.deg == 3).all()

    def test_bad_dims(self):
        with pytest.raises(GraphError):
            torus3d(1, 3, 3)


class TestCompleteBipartite:
    def test_structure(self):
        g = complete_bipartite(2, 3)
        assert g.num_nodes == 5
        assert g.num_edges() == 6
        assert g.deg.tolist() == [3, 3, 2, 2, 2]
        assert g.diameter() == 2

    def test_bad_sides(self):
        with pytest.raises(GraphError):
            complete_bipartite(0, 3)


class TestKautz:
    def test_node_count(self):
        # K(d, n) has (d+1) * d^n nodes.
        g = kautz(2, 2)
        assert g.num_nodes == 3 * 2 * 2
        g = kautz(2, 1)
        assert g.num_nodes == 3 * 2

    def test_small_diameter(self):
        g = kautz(2, 2)
        assert g.diameter() <= 3  # Kautz diameter = word length

    def test_bad_args(self):
        with pytest.raises(GraphError):
            kautz(1, 2)


class TestChordalRing:
    def test_structure(self):
        g = chordal_ring(12, 4)
        assert g.num_nodes == 12
        assert g.diameter() < ring(12).diameter()

    def test_degree_bounded(self):
        g = chordal_ring(10, 3)
        assert g.deg.max() <= 4

    def test_bad_chord(self):
        with pytest.raises(GraphError):
            chordal_ring(10, 1)
        with pytest.raises(GraphError):
            chordal_ring(10, 6)


class TestPetersen:
    def test_moore_graph_properties(self):
        g = petersen()
        assert g.num_nodes == 10
        assert (g.deg == 3).all()
        assert g.diameter() == 2
        assert g.num_edges() == 15


class TestRandomRegular:
    @pytest.mark.parametrize("seed", range(4))
    def test_regularity(self, seed):
        g = random_regular(12, 3, rng=seed)
        assert (g.deg == 3).all()
        assert is_regular(g)

    def test_parity_rejected(self):
        with pytest.raises(GraphError, match="even"):
            random_regular(5, 3)

    def test_bad_degree(self):
        with pytest.raises(GraphError):
            random_regular(4, 1)
        with pytest.raises(GraphError):
            random_regular(4, 4)


class TestMappingOnNewFamilies:
    """Every new family must work as a mapping target end to end."""

    @pytest.mark.parametrize(
        "system",
        [mesh3d(2, 2, 2), torus3d(2, 2, 2), chordal_ring(8, 3),
         kautz(2, 1), petersen()],
        ids=["mesh3d", "torus3d", "chordal", "kautz", "petersen"],
    )
    def test_pipeline(self, system):
        from repro.clustering import RandomClusterer
        from repro.core import ClusteredGraph, CriticalEdgeMapper
        from repro.workloads import layered_random_dag

        graph = layered_random_dag(num_tasks=4 * system.num_nodes, rng=1)
        clustering = RandomClusterer(system.num_nodes).cluster(graph, rng=1)
        result = CriticalEdgeMapper(rng=1).map(
            ClusteredGraph(graph, clustering), system
        )
        assert result.total_time >= result.lower_bound
