"""Tests for repro.workloads.paper_examples — every fact the paper states."""

import numpy as np
import pytest

from repro.core import (
    AbstractGraph,
    Assignment,
    ClusteredGraph,
    CriticalEdgeMapper,
    analyze_criticality,
    evaluate_assignment,
    ideal_schedule,
)
from repro.workloads import (
    RUNNING_EXAMPLE_I_END,
    RUNNING_EXAMPLE_I_START,
    RUNNING_EXAMPLE_LOWER_BOUND,
    bokhari_counterexample_system,
    bokhari_counterexample_task_graph,
    lee_counterexample_phases,
    lee_counterexample_system,
    lee_counterexample_task_graph,
    running_example_assignment_vector,
    running_example_clustered,
    running_example_clustering,
    running_example_system,
    running_example_task_graph,
    singleton_clustering,
)


class TestRunningExample:
    def test_task_weights(self):
        g = running_example_task_graph()
        assert g.task_sizes.tolist() == [1, 1, 2, 3, 3, 1, 3, 2, 2, 3, 1]

    def test_quoted_edge_weights(self):
        g = running_example_task_graph()
        # The weights the paper's prose quotes (1-based ids).
        assert g.weight(0, 1) == 1   # (1,2)
        assert g.weight(0, 2) == 2   # (1,3)
        assert g.weight(0, 3) == 2   # (1,4)
        assert g.weight(4, 8) == 1   # (5,9)
        assert g.weight(5, 10) == 1  # (6,11)
        assert g.weight(6, 8) == 2   # (7,9)

    def test_clustering_structure(self):
        c = running_example_clustering()
        assert c.num_clusters == 4
        # Tasks 1 and 4 (0-based 0 and 3) share cluster 0 (Sec. 4.1).
        assert c.cluster_of(0) == c.cluster_of(3) == 0

    def test_ideal_schedule_matches_fig22b(self):
        ideal = ideal_schedule(running_example_clustered())
        assert ideal.i_start.tolist() == list(RUNNING_EXAMPLE_I_START)
        assert ideal.i_end.tolist() == list(RUNNING_EXAMPLE_I_END)

    def test_lower_bound_is_14(self):
        ideal = ideal_schedule(running_example_clustered())
        assert ideal.total_time == RUNNING_EXAMPLE_LOWER_BOUND == 14

    def test_latest_tasks_are_9_and_11(self):
        ideal = ideal_schedule(running_example_clustered())
        assert (ideal.latest_tasks() + 1).tolist() == [9, 11]

    def test_edge_59_slack_is_2(self):
        """Sec. 2.1: e59 not critical — 'only when the increase is by more
        than 2 will the ideal graph edge be affected'."""
        ideal = ideal_schedule(running_example_clustered())
        assert ideal.slack(4, 8) == 2

    def test_critical_abstract_matrix_matches_fig20b(self):
        an = analyze_criticality(running_example_clustered())
        expected = np.zeros((4, 4), dtype=np.int64)
        expected[0, 1] = expected[1, 0] = 3
        expected[0, 2] = expected[2, 0] = 6
        assert np.array_equal(an.c_abs_edge, expected)
        assert an.critical_degree.tolist() == [9, 3, 6, 0]

    def test_edge_79_is_critical(self):
        an = analyze_criticality(running_example_clustered())
        assert an.crit_mask[6, 8]

    def test_system_graph_matches_fig21(self):
        s = running_example_system()
        assert s.num_nodes == 4
        assert s.deg.tolist() == [2, 2, 2, 2]
        assert s.shortest[0].tolist() == [0, 1, 2, 1]

    def test_fig23_assignment_achieves_lower_bound(self):
        clustered = running_example_clustered()
        schedule = evaluate_assignment(
            clustered,
            running_example_system(),
            Assignment(running_example_assignment_vector()),
        )
        assert schedule.total_time == 14
        # Fig. 23-d: start/end equal the ideal values.
        assert schedule.start.tolist() == list(RUNNING_EXAMPLE_I_START)
        assert schedule.end.tolist() == list(RUNNING_EXAMPLE_I_END)

    def test_full_pipeline_terminates_immediately(self):
        result = CriticalEdgeMapper(rng=0).map(
            running_example_clustered(), running_example_system()
        )
        assert result.is_provably_optimal
        assert result.refinement.trials == 0


class TestBokhariInstance:
    def test_shape_matches_fig7(self):
        g = bokhari_counterexample_task_graph()
        assert g.num_tasks == 8
        assert g.num_edges == 9
        assert g.degree(2) == 4  # task 3 (1-based) has degree 4

    def test_system_is_cubic(self):
        s = bokhari_counterexample_system()
        assert s.num_nodes == 8
        assert (s.deg == 3).all()

    def test_max_cardinality_is_8(self):
        """The paper: 'eight out of nine problem edges' is the optimum."""
        from repro.experiments import run_bokhari_counterexample

        report = run_bokhari_counterexample()
        assert report.objective_best == 8

    def test_phenomenon_certified(self):
        from repro.experiments import run_bokhari_counterexample

        report = run_bokhari_counterexample()
        assert report.phenomenon_holds
        assert report.assignments_enumerated == 40320
        assert report.global_best_time == report.lower_bound


class TestLeeInstance:
    def test_shape_matches_fig13(self):
        g = lee_counterexample_task_graph()
        assert g.num_tasks == 8
        assert g.num_edges == 7
        assert g.degree(2) == 4

    def test_edge_weights_match_fig15(self):
        g = lee_counterexample_task_graph()
        assert g.weight(0, 2) == 3  # (1,3)
        assert g.weight(1, 2) == 3  # (2,3)
        assert g.weight(1, 6) == 2  # (2,7)
        assert g.weight(2, 3) == 4  # (3,4)
        assert g.weight(2, 4) == 2  # (3,5)
        assert g.weight(3, 5) == 1  # (4,6)
        assert g.weight(4, 7) == 3  # (5,8)

    def test_phases_match_fig15(self):
        phases = lee_counterexample_phases()
        assert len(phases) == 4
        assert (0, 2) in phases[0] and (1, 6) in phases[0]
        assert phases[2] == [(3, 5)]
        assert phases[3] == [(4, 7)]

    def test_minimum_cost_is_11(self):
        """Fig. 15: the optimal communication cost is 11 units."""
        from repro.experiments import run_lee_counterexample

        report = run_lee_counterexample()
        assert report.objective_best == 11

    def test_phenomenon_certified(self):
        from repro.experiments import run_lee_counterexample

        report = run_lee_counterexample()
        assert report.phenomenon_holds
        assert report.gap >= 1


class TestSingletonClustering:
    def test_each_task_own_cluster(self):
        g = lee_counterexample_task_graph()
        c = singleton_clustering(g)
        assert c.num_clusters == g.num_tasks
        cg = ClusteredGraph(g, c)
        assert np.array_equal(cg.clus_edge, g.prob_edge)
