"""Unit tests for repro.core.evaluate (the Sec. 4.3.4 evaluator)."""

import numpy as np
import pytest

from repro.core import (
    Assignment,
    ClusteredGraph,
    Clustering,
    evaluate_assignment,
    ideal_schedule,
    total_time,
)
from repro.topology import chain, complete, ring
from tests.conftest import random_instance


class TestEvaluateAssignment:
    def test_diamond_on_chain(self, diamond_clustered):
        system = chain(4)
        sched = evaluate_assignment(diamond_clustered, system, Assignment.identity(4))
        # 0:[0,2); 1 starts 2+1*1=3 ends 6; 2 starts 2+2*2=6 ends 7;
        # 3 starts max(6+2*2, 7+1*1) = 10, ends 12.
        assert sched.start.tolist() == [0, 3, 6, 10]
        assert sched.end.tolist() == [2, 6, 7, 12]
        assert sched.total_time == 12

    def test_closure_matches_ideal(self, diamond_clustered):
        """Evaluating on the complete graph reproduces the ideal schedule."""
        ideal = ideal_schedule(diamond_clustered)
        sched = evaluate_assignment(
            diamond_clustered, complete(4), Assignment.identity(4)
        )
        assert np.array_equal(sched.start, ideal.i_start)
        assert np.array_equal(sched.end, ideal.i_end)
        assert sched.total_time == ideal.total_time

    def test_total_time_matches_schedule(self, medium_instance):
        clustered, system = medium_instance
        for seed in range(5):
            a = Assignment.random(system.num_nodes, rng=seed)
            assert (
                total_time(clustered, system, a)
                == evaluate_assignment(clustered, system, a).total_time
            )

    def test_never_below_lower_bound(self):
        """Theorem 3's premise: every assignment >= ideal makespan."""
        for seed in range(10):
            clustered, system = random_instance(seed)
            bound = ideal_schedule(clustered).total_time
            a = Assignment.random(system.num_nodes, rng=seed)
            assert total_time(clustered, system, a) >= bound

    def test_per_task_never_earlier_than_ideal(self, medium_instance):
        clustered, system = medium_instance
        ideal = ideal_schedule(clustered)
        sched = evaluate_assignment(
            clustered, system, Assignment.random(system.num_nodes, rng=0)
        )
        assert (sched.start >= ideal.i_start).all()
        assert (sched.end >= ideal.i_end).all()

    def test_precedence_respected(self, medium_instance):
        clustered, system = medium_instance
        sched = evaluate_assignment(
            clustered, system, Assignment.random(system.num_nodes, rng=1)
        )
        for e in clustered.graph.edges():
            assert sched.start[e.dst] >= sched.end[e.src] + sched.comm[e.src, e.dst]

    def test_latest_tasks(self, diamond_clustered):
        sched = evaluate_assignment(
            diamond_clustered, chain(4), Assignment.identity(4)
        )
        assert sched.latest_tasks().tolist() == [3]

    def test_processor_of_and_tasks_on(self, diamond_graph):
        cg = ClusteredGraph(diamond_graph, Clustering([0, 0, 1, 1]))
        sched = evaluate_assignment(cg, chain(2), Assignment([1, 0]))
        # cluster 0 -> system 1, cluster 1 -> system 0.
        assert sched.processor_of(0) == 1
        assert sched.processor_of(3) == 0
        assert sorted(sched.tasks_on(1).tolist()) == [0, 1]
        assert sorted(sched.tasks_on(0).tolist()) == [2, 3]

    def test_processor_busy_time(self, diamond_graph):
        cg = ClusteredGraph(diamond_graph, Clustering([0, 0, 1, 1]))
        sched = evaluate_assignment(cg, chain(2), Assignment.identity(2))
        assert sched.processor_busy_time().tolist() == [5, 3]

    def test_communication_volume(self, diamond_clustered):
        sched = evaluate_assignment(
            diamond_clustered, complete(4), Assignment.identity(4)
        )
        assert sched.communication_volume() == diamond_clustered.graph.total_comm

    def test_isomorphic_placements_same_time(self, diamond_clustered):
        """Rotating a ring placement cannot change the makespan."""
        system = ring(4)
        base = Assignment.from_placement([0, 1, 2, 3])
        rotated = Assignment.from_placement([1, 2, 3, 0])
        assert total_time(diamond_clustered, system, base) == total_time(
            diamond_clustered, system, rotated
        )

    def test_arrays_read_only(self, diamond_clustered):
        sched = evaluate_assignment(
            diamond_clustered, chain(4), Assignment.identity(4)
        )
        with pytest.raises(ValueError):
            sched.start[0] = 1
        with pytest.raises(ValueError):
            sched.comm[0, 1] = 1
