"""Tests for repro.lint: rules, engine, baseline, CLI, and repo cleanliness.

The fixture files under ``tests/fixtures/lint/`` carry their own
expectations: every offending line ends with ``# expect: rule_name``.
The fixture suite asserts the engine reports *exactly* that multiset of
``(path, line, rule)`` — no misses, no extras — so both false negatives
and false positives fail loudly.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    RULES,
    BaselineError,
    Finding,
    apply_baseline,
    available_rules,
    check_source,
    iter_python_files,
    load_baseline,
    parse_suppressions,
    rule_catalog,
    run_lint,
    save_baseline,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
REPO_ROOT = Path(__file__).resolve().parents[1]

_EXPECT_RE = re.compile(r"#\s*expect:\s*([a-z0-9_,\s]+)")


def expected_fixture_findings() -> set[tuple[str, int, str]]:
    """Parse ``# expect: rule`` annotations out of every fixture file."""
    expected: set[tuple[str, int, str]] = set()
    for path in sorted(FIXTURES.rglob("*.py")):
        rel = path.relative_to(FIXTURES).as_posix()
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            match = _EXPECT_RE.search(line)
            if match:
                for rule in match.group(1).split(","):
                    expected.add((rel, lineno, rule.strip()))
    return expected


class TestFixtures:
    def test_every_rule_has_a_fixture_expectation(self):
        covered = {rule for _, _, rule in expected_fixture_findings()}
        assert covered == set(available_rules())

    def test_fixtures_report_exactly_the_expected_findings(self):
        result = run_lint([str(FIXTURES)], rel_root=str(FIXTURES))
        got = {(f.path, f.line, f.rule) for f in result.findings}
        assert got == expected_fixture_findings()
        # The multiset view too: no doubled reports on one line.
        assert len(result.findings) == len(got)

    def test_parallel_run_is_bit_identical(self):
        serial = run_lint([str(FIXTURES)], rel_root=str(FIXTURES))
        parallel = run_lint([str(FIXTURES)], rel_root=str(FIXTURES), max_workers=3)
        assert serial == parallel

    def test_rule_subset_restricts_findings(self):
        result = run_lint(
            [str(FIXTURES)],
            rule_names=["det_wall_clock"],
            rel_root=str(FIXTURES),
        )
        assert {f.rule for f in result.findings} == {"det_wall_clock"}

    def test_clean_and_suppressed_fixtures_have_no_findings(self):
        result = run_lint([str(FIXTURES)], rel_root=str(FIXTURES))
        silent = {"clean.py", "suppressed.py", "repro/utils.py"}
        assert not [f for f in result.findings if f.path in silent]


class TestRuleEdgeCases:
    def check(self, source: str, path: str = "pkg/module.py") -> list[Finding]:
        return check_source(source, path)

    def test_default_rng_and_seedsequence_are_allowed(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert self.check(src) == []

    def test_numpy_alias_is_resolved(self):
        src = "import numpy as xyz\nv = xyz.random.rand(3)\n"
        assert [f.rule for f in self.check(src)] == ["det_unseeded_random"]

    def test_local_variable_named_random_is_not_flagged(self):
        src = "def f(random):\n    return random.choice\n"
        assert self.check(src) == []

    def test_shadowed_hash_builtin_is_not_flagged(self):
        src = "from mylib import hash\nkey = hash('x')\n"
        assert self.check(src) == []

    def test_atexit_register_is_not_a_registry_call(self):
        src = "import atexit\natexit.register(print)\n"
        assert self.check(src) == []

    def test_register_with_dynamic_name_inside_function_is_skipped(self):
        src = (
            "def register_thing(reg, name):\n"
            "    return reg.register(name)\n"
        )
        assert self.check(src) == []

    def test_clock_allowlist_matches_path_suffix(self):
        src = "import time\nt = time.perf_counter()\n"
        assert self.check(src, path="src/repro/utils.py") == []
        assert [f.rule for f in self.check(src, path="src/repro/sim/engine.py")] == [
            "det_wall_clock"
        ]

    def test_frozen_dataclass_rule_only_fires_under_api(self):
        src = "from dataclasses import dataclass\n@dataclass\nclass Thing:\n    x: int = 0\n"
        assert self.check(src, path="src/repro/core/thing.py") == []
        assert [f.rule for f in self.check(src, path="src/repro/api/thing.py")] == [
            "inv_frozen_dataclass"
        ]

    def test_syntax_error_becomes_a_parse_error_finding(self):
        findings = self.check("def broken(:\n")
        assert [f.rule for f in findings] == ["parse_error"]
        assert findings[0].severity == "error"

    def test_unknown_rule_name_raises_with_suggestion(self):
        with pytest.raises(Exception, match="det_wall_clock"):
            run_lint([str(FIXTURES)], rule_names=["det_wall_clok"])

    def test_suppression_scope_is_same_line_or_line_above(self):
        allowed = parse_suppressions(
            "# repro: allow[det_wall_clock]\n"
            "x = 1  # repro: allow[det_builtin_hash, inv_bare_except]\n"
        )
        assert allowed == {
            1: {"det_wall_clock"},
            2: {"det_builtin_hash", "inv_bare_except"},
        }
        # Two lines of distance is out of scope: the finding stays.
        src = (
            "import time\n"
            "# repro: allow[det_wall_clock]\n"
            "\n"
            "t = time.time()\n"
        )
        assert [f.rule for f in self.check(src)] == ["det_wall_clock"]

    def test_suppression_marker_inside_string_is_ignored(self):
        src = (
            "import time\n"
            "note = 'repro: allow[det_wall_clock]'\n"
            "t = time.time()\n"
        )
        assert [f.rule for f in self.check(src)] == ["det_wall_clock"]

    def test_iter_python_files_rejects_missing_paths(self):
        with pytest.raises(FileNotFoundError):
            iter_python_files(["/no/such/dir-anywhere"])

    def test_rule_catalog_is_complete_and_coded(self):
        catalog = rule_catalog()
        assert [r["name"] for r in catalog] == available_rules()
        codes = [r["code"] for r in catalog]
        assert len(set(codes)) == len(codes)
        assert all(re.fullmatch(r"(DET|INV)\d{3}", c) for c in codes)
        assert all(r["summary"] for r in catalog)


def _finding(path="a.py", line=3, rule="det_wall_clock", snippet="t = time.time()"):
    return Finding(
        path=path,
        line=line,
        col=4,
        rule=rule,
        severity="error",
        message="msg",
        snippet=snippet,
    )


class TestBaseline:
    def test_roundtrip_and_line_drift_tolerance(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        save_baseline(str(baseline), [_finding(line=3)])
        entries = load_baseline(str(baseline))
        # Same path/rule/snippet on a different line still matches.
        diff = apply_baseline([_finding(line=41)], entries)
        assert diff.new == ()
        assert diff.matched == 1
        assert diff.stale == ()

    def test_new_findings_and_stale_entries_are_split_out(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        save_baseline(
            str(baseline),
            [_finding(snippet="old_line()"), _finding(rule="det_builtin_hash")],
        )
        entries = load_baseline(str(baseline))
        current = [_finding(rule="det_builtin_hash"), _finding(rule="inv_bare_except")]
        diff = apply_baseline(current, entries)
        assert [f.rule for f in diff.new] == ["inv_bare_except"]
        assert diff.matched == 1
        assert [e["snippet"] for e in diff.stale] == ["old_line()"]

    def test_identical_lines_match_by_count(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        save_baseline(str(baseline), [_finding(line=3)])
        entries = load_baseline(str(baseline))
        diff = apply_baseline([_finding(line=3), _finding(line=9)], entries)
        assert diff.matched == 1
        assert len(diff.new) == 1

    def test_malformed_baseline_raises_baseline_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(BaselineError, match="not valid JSON"):
            load_baseline(str(bad))
        bad.write_text('{"findings": [{"path": 3}]}')
        with pytest.raises(BaselineError, match="entry 0"):
            load_baseline(str(bad))


VIOLATION = "import time\n\ndef f():\n    return time.time()\n"
CLEAN = "def f():\n    return 1\n"


class TestCli:
    def run_lint_cli(self, *argv):
        try:
            code = main(["lint", *argv])
        except SystemExit as exc:
            return int(exc.code or 0)
        return code

    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        monkeypatch.chdir(tmp_path)
        assert self.run_lint_cli(".") == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_violation_exits_one_with_greppable_line(
        self, tmp_path, monkeypatch, capsys
    ):
        (tmp_path / "bad.py").write_text(VIOLATION)
        monkeypatch.chdir(tmp_path)
        assert self.run_lint_cli(".") == 1
        out = capsys.readouterr().out
        assert "bad.py:4:" in out
        assert "DET002[det_wall_clock]" in out

    def test_json_report_shape(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "bad.py").write_text(VIOLATION)
        monkeypatch.chdir(tmp_path)
        assert self.run_lint_cli(".", "--json") == 1
        report = json.loads(capsys.readouterr().out)
        assert report["files_checked"] == 1
        assert report["baselined"] == 0
        assert [f["rule"] for f in report["new"]] == ["det_wall_clock"]
        assert report["findings"] == report["new"]

    def test_update_baseline_then_rerun_is_clean(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "bad.py").write_text(VIOLATION)
        monkeypatch.chdir(tmp_path)
        assert self.run_lint_cli(".", "--update-baseline") == 0
        assert (tmp_path / "lint-baseline.json").is_file()
        capsys.readouterr()
        # The default baseline path is picked up without --baseline.
        assert self.run_lint_cli(".") == 0
        assert "1 baselined" in capsys.readouterr().out
        # A *new* violation still fails.
        (tmp_path / "worse.py").write_text("key = hash('x')\n")
        assert self.run_lint_cli(".") == 1

    def test_stale_baseline_entries_are_reported_not_fatal(
        self, tmp_path, monkeypatch, capsys
    ):
        (tmp_path / "bad.py").write_text(VIOLATION)
        monkeypatch.chdir(tmp_path)
        assert self.run_lint_cli(".", "--update-baseline") == 0
        (tmp_path / "bad.py").write_text(CLEAN)
        capsys.readouterr()
        assert self.run_lint_cli(".") == 0
        assert "stale" in capsys.readouterr().out

    def test_no_baseline_flag_surfaces_grandfathered_findings(
        self, tmp_path, monkeypatch
    ):
        (tmp_path / "bad.py").write_text(VIOLATION)
        monkeypatch.chdir(tmp_path)
        assert self.run_lint_cli(".", "--update-baseline") == 0
        assert self.run_lint_cli(".", "--no-baseline") == 1

    def test_rules_subset_and_unknown_rule(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "bad.py").write_text(VIOLATION)
        monkeypatch.chdir(tmp_path)
        assert self.run_lint_cli(".", "--rules", "det_builtin_hash") == 0
        assert self.run_lint_cli(".", "--rules", "det_wall_clok") == 2
        assert "did you mean" in capsys.readouterr().err

    def test_usage_errors_exit_two(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "ok.py").write_text(CLEAN)
        assert self.run_lint_cli(".", "--workers", "0") == 2
        assert self.run_lint_cli("missing_dir") == 2
        assert self.run_lint_cli(".", "--update-baseline", "--no-baseline") == 2

    def test_list_rules_prints_catalog(self, capsys):
        assert self.run_lint_cli("--list-rules") == 0
        out = capsys.readouterr().out
        for rule in available_rules():
            assert rule in out


@pytest.mark.skipif(
    not (REPO_ROOT / "src" / "repro").is_dir()
    or not (REPO_ROOT / "lint-baseline.json").is_file(),
    reason="needs the source checkout with its checked-in baseline",
)
class TestRepoIsClean:
    """The acceptance gate: src/repro is clean modulo the checked-in baseline."""

    def test_src_repro_is_clean_modulo_baseline(self):
        result = run_lint(
            [str(REPO_ROOT / "src" / "repro")], rel_root=str(REPO_ROOT)
        )
        entries = load_baseline(str(REPO_ROOT / "lint-baseline.json"))
        diff = apply_baseline(result.findings, entries)
        assert diff.new == (), "\n".join(
            f"{f.path}:{f.line} {f.rule}: {f.message}" for f in diff.new
        )
        # The baseline stays honest: no stale entries, and every entry
        # still matches a real grandfathered finding.
        assert diff.stale == ()
        assert diff.matched == len(entries) > 0

    def test_suppressions_in_repo_are_justified(self):
        """Every repro: allow comment carries a justification or docstring.

        The two in-tree suppressions (Assignment.__hash__, the service's
        best-effort cache put) are the worked examples in the README —
        keep them present and commented.
        """
        hash_src = (REPO_ROOT / "src/repro/core/assignment.py").read_text()
        assert "repro: allow[det_builtin_hash]" in hash_src
        assert "In-process-only" in hash_src
        service_src = (REPO_ROOT / "src/repro/service/service.py").read_text()
        assert service_src.count("repro: allow[inv_bare_except]") == 2

    def test_service_layer_never_calls_builtin_hash(self):
        """Fingerprints and store keys come from SHA-256, never hash()."""
        result = run_lint(
            [str(REPO_ROOT / "src" / "repro" / "service")],
            rule_names=["det_builtin_hash"],
            rel_root=str(REPO_ROOT),
        )
        assert result.findings == ()

    def test_rules_registry_rejects_duplicates(self):
        from repro.lint import DuplicateRuleError, register_rule

        with pytest.raises(DuplicateRuleError):
            register_rule("det_wall_clock")(type("Dup", (), {}))
