"""Equivalence tests for the incremental evaluator."""

import numpy as np
import pytest

from repro.core import (
    Assignment,
    IncrementalEvaluator,
    evaluate_assignment,
    total_time,
)
from tests.conftest import random_instance


class TestIncrementalEvaluator:
    def test_initial_state_matches_full_eval(self):
        for seed in range(5):
            clustered, system = random_instance(seed)
            a = Assignment.random(system.num_nodes, rng=seed)
            inc = IncrementalEvaluator(clustered, system, a)
            assert inc.total_time == total_time(clustered, system, a)
            full = evaluate_assignment(clustered, system, a)
            assert np.array_equal(inc.end_times(), full.end)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_swap_sequences_equivalent(self, seed):
        """The core guarantee: any swap sequence stays exact."""
        clustered, system = random_instance(seed)
        gen = np.random.default_rng(seed)
        a = Assignment.random(system.num_nodes, rng=seed)
        inc = IncrementalEvaluator(clustered, system, a)
        for _ in range(25):
            x, y = gen.choice(system.num_nodes, size=2, replace=False)
            inc.swap(int(x), int(y))
            assert inc.verify(), "incremental end times diverged"

    def test_swap_self_noop(self):
        clustered, system = random_instance(0)
        inc = IncrementalEvaluator(
            clustered, system, Assignment.random(system.num_nodes, rng=0)
        )
        before = inc.total_time
        assert inc.swap(3, 3) == before

    def test_swap_is_involution(self):
        clustered, system = random_instance(1)
        inc = IncrementalEvaluator(
            clustered, system, Assignment.random(system.num_nodes, rng=1)
        )
        before = inc.total_time
        ends = inc.end_times()
        inc.swap(0, 5)
        inc.swap(0, 5)
        assert inc.total_time == before
        assert np.array_equal(inc.end_times(), ends)

    def test_probe_does_not_commit(self):
        clustered, system = random_instance(2)
        a = Assignment.random(system.num_nodes, rng=2)
        inc = IncrementalEvaluator(clustered, system, a)
        before = inc.total_time
        ends = inc.end_times()
        probed = inc.probe_swap(1, 4)
        assert probed == total_time(clustered, system, a.swapped(1, 4))
        assert inc.total_time == before
        assert np.array_equal(inc.end_times(), ends)
        assert inc.assignment == a

    def test_assignment_property_tracks_swaps(self):
        clustered, system = random_instance(3)
        a = Assignment.random(system.num_nodes, rng=3)
        inc = IncrementalEvaluator(clustered, system, a)
        inc.swap(2, 6)
        assert inc.assignment == a.swapped(2, 6)
