"""End-to-end tests for the stdlib HTTP front-end (repro.service.http)."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import registry_listing
from repro.service import MappingService, make_server

SCENARIO = {
    "workload": "fft",
    "workload_params": {"points_log2": 3},
    "topology": "hypercube:2",
    "mapper": "critical",
    "seed": 17,
}


@pytest.fixture(scope="module")
def server():
    service = MappingService(max_workers=2, cache_size=32)
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=10)
    service.close()


def request(server, path, body=None):
    """One JSON request; returns (status, payload) including error statuses."""
    host, port = server.server_address[:2]
    req = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(body).encode() if body is not None else None,
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def poll_job(server, job_id, deadline=60.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        status, payload = request(server, f"/jobs/{job_id}")
        assert status == 200
        if payload["status"] in ("done", "failed"):
            return payload
        time.sleep(0.05)
    pytest.fail(f"job {job_id} did not finish within {deadline}s")


class TestRoutes:
    def test_health(self, server):
        status, payload = request(server, "/health")
        assert status == 200
        assert payload["workers"] == 2
        assert "cache" in payload and "jobs" in payload

    @pytest.mark.parametrize(
        "kind",
        ["mappers", "clusterers", "workloads", "topologies", "metrics", "rules"],
    )
    def test_registries_match_cli_serialization(self, server, kind):
        status, payload = request(server, f"/registries/{kind}")
        assert status == 200
        assert payload == registry_listing(kind)

    def test_unknown_registry_404(self, server):
        status, payload = request(server, "/registries/frobnicators")
        assert status == 404
        assert "unknown registry" in payload["error"]

    def test_unknown_route_404(self, server):
        status, payload = request(server, "/nope")
        assert status == 404
        status, payload = request(server, "/jobs/x/y/z")
        assert status == 404

    def test_unknown_job_404(self, server):
        status, payload = request(server, "/jobs/job-424242")
        assert status == 404
        assert "unknown job" in payload["error"]

    def test_query_strings_ignored_in_routing(self, server):
        # cache-busting params like ?_=123 must not break route matching
        status, payload = request(server, "/registries/mappers?_=123")
        assert status == 200
        assert payload == registry_listing("mappers")
        status, posted = request(
            server, "/jobs?async=1", {"scenario": dict(SCENARIO, seed=99)}
        )
        assert status in (200, 202)
        status, polled = request(server, f"/jobs/{posted['id']}?poll=1")
        assert status == 200
        assert polled["id"] == posted["id"]


class TestStatsAndRecommend:
    @pytest.fixture()
    def stored_server(self, tmp_path):
        """A short-lived server whose service persists results durably."""
        service = MappingService(
            max_workers=2,
            cache_size=32,
            store_path=str(tmp_path / "history.jsonl"),
        )
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        yield httpd
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=10)
        service.close()

    def test_stats_route_mirrors_health(self, server):
        status, payload = request(server, "/stats")
        assert status == 200
        assert {"workers", "cache", "jobs", "queue", "store"} <= set(payload)
        status, health = request(server, "/health")
        assert status == 200
        assert set(payload) == set(health)

    def test_recommend_requires_query_params(self, server):
        status, payload = request(server, "/recommend")
        assert status == 400
        assert "query params" in payload["error"]
        status, _ = request(server, "/recommend?workload=fft")
        assert status == 400

    def test_recommend_end_to_end_via_real_solves(self, stored_server):
        # Empty history: an explicit 404, not an empty payload.
        status, payload = request(
            stored_server, "/recommend?workload=fft&topology=hypercube"
        )
        assert status == 404
        assert "no recorded history" in payload["error"]

        status, posted = request(stored_server, "/jobs", {"scenario": SCENARIO})
        assert status == 202
        assert poll_job(stored_server, posted["id"])["status"] == "done"

        status, payload = request(
            stored_server, "/recommend?workload=fft&topology=hypercube"
        )
        assert status == 200
        assert payload["workload"] == "fft"
        assert payload["topology"] == "hypercube"
        assert payload["samples"] == 1
        assert payload["recommendation"]["mapper"] == "critical"
        assert payload["recommendation"]["samples"] == 1
        assert payload["alternatives"] == []

        # A different family key still has no evidence.
        status, _ = request(
            stored_server, "/recommend?workload=gnp&topology=hypercube"
        )
        assert status == 404


class TestJobLifecycle:
    def test_submit_poll_and_cached_repost(self, server):
        # first POST: accepted, computed on the pool
        status, posted = request(server, "/jobs", {"scenario": SCENARIO})
        assert status == 202
        assert posted["cached"] is False
        assert posted["fingerprint"]

        payload = poll_job(server, posted["id"])
        assert payload["status"] == "done"
        outcome = payload["outcome"]
        assert outcome["total_time"] >= outcome["lower_bound"]

        # identical re-POST: answered from the cache, nothing recomputes
        status2, reposted = request(server, "/jobs", {"scenario": SCENARIO})
        assert status2 == 200
        assert reposted["cached"] is True
        assert reposted["fingerprint"] == posted["fingerprint"]
        cached_payload = poll_job(server, reposted["id"])
        assert cached_payload["outcome"] == outcome

    def test_bare_scenario_body(self, server):
        body = dict(SCENARIO, seed=18)
        status, posted = request(server, "/jobs", body)
        assert status in (200, 202)
        assert poll_job(server, posted["id"])["status"] == "done"

    def test_jobs_listing(self, server):
        status, payload = request(server, "/jobs")
        assert status == 200
        assert len(payload["jobs"]) >= 1
        assert {"id", "status", "cached"} <= set(payload["jobs"][0])

    def test_failed_job_surfaces_error(self, server):
        body = {
            "workload": "layered_random",
            "workload_params": {"num_tasks": 4},
            "topology": "hypercube:3",
        }
        status, posted = request(server, "/jobs", body)
        assert status == 202
        payload = poll_job(server, posted["id"])
        assert payload["status"] == "failed"
        assert "every node needs a cluster" in payload["error"]


class TestValidation:
    def test_invalid_json_body_400(self, server):
        host, port = server.server_address[:2]
        req = urllib.request.Request(
            f"http://{host}:{port}/jobs", data=b"{not json"
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req, timeout=30)
        assert exc_info.value.code == 400

    def test_empty_body_400(self, server):
        status, payload = request(server, "/jobs", body={})
        assert status == 400  # Scenario.from_dict: workload missing

    def test_unknown_axis_400(self, server):
        status, payload = request(
            server, "/jobs", {"scenario": dict(SCENARIO, mapper="nonsense")}
        )
        assert status == 400
        assert "unknown mapper" in payload["error"]

    def test_unknown_job_field_400(self, server):
        status, payload = request(
            server, "/jobs", {"scenario": SCENARIO, "priority": 3}
        )
        assert status == 400
        assert "priority" in payload["error"]

    def test_bad_replica_400(self, server):
        status, payload = request(
            server, "/jobs", {"scenario": SCENARIO, "replica": -1}
        )
        assert status == 400

    def test_replica_out_of_range_400(self, server):
        status, payload = request(
            server, "/jobs", {"scenario": SCENARIO, "replica": 5}
        )
        assert status == 400
        assert "out of range" in payload["error"]

    def test_post_to_wrong_path_404(self, server):
        status, payload = request(server, "/registries/mappers", body={})
        assert status == 404
