"""Unit tests for repro.workloads.random_dag."""

import numpy as np
import pytest

from repro.utils import GraphError
from repro.workloads import gnp_dag, layered_random_dag, series_parallel_dag


class TestLayeredRandomDag:
    @pytest.mark.parametrize("n", [1, 2, 30, 120])
    def test_sizes_and_validity(self, n):
        g = layered_random_dag(num_tasks=n, rng=0)
        assert g.num_tasks == n  # constructor already validated DAG-ness

    def test_every_non_entry_task_has_predecessor(self):
        g = layered_random_dag(num_tasks=80, rng=1)
        entries = set(g.sources().tolist())
        for t in range(g.num_tasks):
            if t not in entries:
                assert g.predecessors(t).size > 0

    def test_deterministic_by_seed(self):
        assert layered_random_dag(50, rng=9) == layered_random_dag(50, rng=9)

    def test_different_seeds_differ(self):
        assert layered_random_dag(50, rng=1) != layered_random_dag(50, rng=2)

    def test_weight_ranges_respected(self):
        g = layered_random_dag(
            60, task_size_range=(3, 7), comm_range=(2, 4), rng=3
        )
        assert g.task_sizes.min() >= 3 and g.task_sizes.max() <= 7
        weights = [e.weight for e in g.edges()]
        assert min(weights) >= 2 and max(weights) <= 4

    def test_mean_degree_stays_constant(self):
        """The headline property of the default density model."""
        small = layered_random_dag(50, rng=4)
        large = layered_random_dag(300, rng=4)
        deg_small = 2 * small.num_edges / small.num_tasks
        deg_large = 2 * large.num_edges / large.num_tasks
        assert deg_large < 2.5 * deg_small  # no quadratic blow-up

    def test_explicit_probability_honoured(self):
        dense = layered_random_dag(60, extra_edge_prob=0.5, rng=5)
        sparse = layered_random_dag(60, extra_edge_prob=0.0, rng=5)
        assert dense.num_edges > sparse.num_edges
        # With prob 0 only the spanning edges remain: exactly one per
        # non-entry-layer task.
        layers_entries = sparse.sources().size
        assert sparse.num_edges == sparse.num_tasks - layers_entries

    def test_num_layers_controls_depth(self):
        deep = layered_random_dag(60, num_layers=30, rng=6)
        shallow = layered_random_dag(60, num_layers=3, rng=6)
        assert deep.critical_path_length() > shallow.critical_path_length()

    def test_bad_args(self):
        with pytest.raises(GraphError):
            layered_random_dag(0)
        with pytest.raises(GraphError):
            layered_random_dag(10, task_size_range=(0, 5))
        with pytest.raises(GraphError):
            layered_random_dag(10, comm_range=(5, 2))
        with pytest.raises(GraphError):
            layered_random_dag(10, extra_edges_per_task=-1)


class TestGnpDag:
    def test_valid_dag(self):
        g = gnp_dag(40, edge_prob=0.2, rng=0)
        assert g.num_tasks == 40

    def test_edge_count_scales_with_prob(self):
        sparse = gnp_dag(40, edge_prob=0.05, rng=1)
        dense = gnp_dag(40, edge_prob=0.5, rng=1)
        assert dense.num_edges > sparse.num_edges

    def test_prob_zero_no_edges(self):
        assert gnp_dag(20, edge_prob=0.0, rng=2).num_edges == 0

    def test_prob_one_complete_dag(self):
        g = gnp_dag(10, edge_prob=1.0, rng=3)
        assert g.num_edges == 10 * 9 // 2

    def test_bad_prob(self):
        with pytest.raises(GraphError):
            gnp_dag(10, edge_prob=1.2)


class TestSeriesParallelDag:
    def test_depth_zero_single_task(self):
        g = series_parallel_dag(0, rng=0)
        assert g.num_tasks == 1

    @pytest.mark.parametrize("depth,branching", [(1, 2), (2, 2), (3, 2), (2, 3)])
    def test_task_count(self, depth, branching):
        g = series_parallel_dag(depth, branching=branching, rng=0)

        def expected(d):
            return 1 if d == 0 else 2 + branching * expected(d - 1)

        assert g.num_tasks == expected(depth)

    def test_single_source_and_sink(self):
        g = series_parallel_dag(3, rng=1)
        assert g.sources().size == 1
        assert g.sinks().size == 1

    def test_bad_args(self):
        with pytest.raises(GraphError):
            series_parallel_dag(-1)
        with pytest.raises(GraphError):
            series_parallel_dag(2, branching=0)
