"""Unit tests for the repro.sim package (events, machine, engine, trace)."""

import numpy as np
import pytest

from repro.core import (
    Assignment,
    ClusteredGraph,
    Clustering,
    TaskGraph,
    evaluate_assignment,
)
from repro.sim import (
    EventKind,
    EventQueue,
    MimdMachine,
    SimConfig,
    read_trace_jsonl,
    simulate,
    write_trace_jsonl,
)
from repro.topology import chain, complete, hypercube, ring
from tests.conftest import random_instance


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(5, EventKind.TASK_READY, "b")
        q.push(2, EventKind.TASK_READY, "a")
        q.push(9, EventKind.TASK_READY, "c")
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_within_same_time(self):
        q = EventQueue()
        for tag in ("x", "y", "z"):
            q.push(1, EventKind.TASK_READY, tag)
        assert [q.pop().payload for _ in range(3)] == ["x", "y", "z"]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1, EventKind.TASK_READY)

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(0, EventKind.TASK_READY)
        assert q and len(q) == 1


class TestMachine:
    def test_route_cached_and_valid(self):
        m = MimdMachine(ring(6))
        route = m.route(0, 3)
        assert route[0] == 0 and route[-1] == 3
        assert len(route) - 1 == 3
        assert m.route(0, 3) is m.route(0, 3)  # cache hit

    def test_link_acquisition_serializes(self):
        m = MimdMachine(chain(2))
        first = m.acquire_link(0, 1, request_time=0, duration=5)
        second = m.acquire_link(0, 1, request_time=0, duration=5)
        assert first == 0
        assert second == 5  # waits for the first transfer

    def test_directions_independent(self):
        m = MimdMachine(chain(2))
        assert m.acquire_link(0, 1, 0, 5) == 0
        assert m.acquire_link(1, 0, 0, 5) == 0  # full duplex

    def test_utilization(self):
        m = MimdMachine(chain(2))
        m.acquire_link(0, 1, 0, 5)
        assert m.max_link_utilization(makespan=10) == pytest.approx(0.5)
        m.reset_links()
        assert m.max_link_utilization(10) == 0.0


class TestEngineCorrectness:
    def test_paper_mode_equals_analytic(self):
        """The central validation: contention-free DES == Sec. 4.3.4."""
        for seed in range(6):
            clustered, system = random_instance(seed)
            a = Assignment.random(system.num_nodes, rng=seed)
            sched = evaluate_assignment(clustered, system, a)
            sim = simulate(clustered, system, a)
            assert sim.makespan == sched.total_time
            assert np.array_equal(sim.start, sched.start)
            assert np.array_equal(sim.end, sched.end)

    def test_relaxations_only_delay(self):
        for seed in range(6):
            clustered, system = random_instance(seed)
            a = Assignment.random(system.num_nodes, rng=seed)
            base = simulate(clustered, system, a).makespan
            for config in (
                SimConfig(serialize_processors=True),
                SimConfig(link_contention=True),
                SimConfig(True, True),
            ):
                assert simulate(clustered, system, a, config).makespan >= base

    def test_serialization_no_processor_overlap(self):
        clustered, system = random_instance(2)
        a = Assignment.random(system.num_nodes, rng=2)
        sim = simulate(clustered, system, a, SimConfig(serialize_processors=True))
        by_proc = sim.trace.tasks_by_processor()
        for records in by_proc.values():
            for first, second in zip(records, records[1:]):
                assert second.start >= first.end

    def test_contention_no_link_overlap(self):
        clustered, system = random_instance(3)
        a = Assignment.random(system.num_nodes, rng=3)
        sim = simulate(clustered, system, a, SimConfig(link_contention=True))
        per_link: dict = {}
        for rec in sim.trace.transfers:
            per_link.setdefault(rec.link, []).append((rec.start, rec.end))
        for intervals in per_link.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1

    def test_two_tasks_same_processor_overlap_in_paper_mode(self):
        g = TaskGraph([5, 5])  # two independent tasks
        cg = ClusteredGraph(g, Clustering([0, 0]))
        from repro.topology import SystemGraph

        system = SystemGraph(np.zeros((1, 1), dtype=int))
        paper = simulate(cg, system, Assignment.identity(1))
        assert paper.makespan == 5
        serial = simulate(
            cg, system, Assignment.identity(1), SimConfig(serialize_processors=True)
        )
        assert serial.makespan == 10

    def test_store_and_forward_hop_cost(self):
        """A single w-weight message over d hops takes w*d, matching comm."""
        g = TaskGraph([1, 1, 1], [(0, 1, 4)])  # task 2 is an isolated filler
        cg = ClusteredGraph(g, Clustering([0, 1, 2]))
        system = chain(3)  # clusters 0 and 1 at the two ends: distance 2
        a = Assignment.from_placement([0, 2, 1])
        sim = simulate(cg, system, a)
        assert sim.makespan == 1 + 4 * 2 + 1
        assert len(sim.trace.transfers) == 2  # one record per hop

    def test_trace_complete(self):
        clustered, system = random_instance(4)
        a = Assignment.random(system.num_nodes, rng=4)
        sim = simulate(clustered, system, a)
        assert len(sim.trace.tasks) == clustered.num_tasks
        seen = sorted(rec.task for rec in sim.trace.tasks)
        assert seen == list(range(clustered.num_tasks))

    def test_trace_totals(self):
        clustered, system = random_instance(5)
        a = Assignment.random(system.num_nodes, rng=5)
        sim = simulate(clustered, system, a)
        sched = evaluate_assignment(clustered, system, a)
        assert sim.trace.total_transfer_time() == sched.communication_volume()

    def test_busiest_link(self):
        clustered, system = random_instance(6)
        a = Assignment.random(system.num_nodes, rng=6)
        sim = simulate(clustered, system, a)
        busiest = sim.trace.busiest_link()
        if sim.trace.transfers:
            link, busy = busiest
            assert busy > 0
        else:  # pragma: no cover - degenerate instance
            assert busiest is None

    def test_deterministic(self):
        clustered, system = random_instance(7)
        a = Assignment.random(system.num_nodes, rng=7)
        cfg = SimConfig(True, True)
        s1 = simulate(clustered, system, a, cfg)
        s2 = simulate(clustered, system, a, cfg)
        assert s1.makespan == s2.makespan
        assert np.array_equal(s1.start, s2.start)

    def test_link_setup_alpha_beta_model(self):
        """With link_setup = a, every hop costs a + weight."""
        g = TaskGraph([1, 1, 1], [(0, 1, 4)])
        cg = ClusteredGraph(g, Clustering([0, 1, 2]))
        system = chain(3)
        a = Assignment.from_placement([0, 2, 1])  # 2 hops for the message
        sim = simulate(cg, system, a, SimConfig(link_setup=3))
        assert sim.makespan == 1 + 2 * (3 + 4) + 1

    def test_link_setup_zero_matches_paper_model(self):
        clustered, system = random_instance(8)
        a = Assignment.random(system.num_nodes, rng=8)
        base = simulate(clustered, system, a)
        with_zero = simulate(clustered, system, a, SimConfig(link_setup=0))
        assert base.makespan == with_zero.makespan

    def test_negative_setup_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(link_setup=-1)

    def test_config_describe(self):
        assert SimConfig().describe() == "overlapping+contention-free"
        assert SimConfig(True, True).describe() == "serialized+contention"
        assert "setup=2" in SimConfig(link_setup=2).describe()

    def test_na_ns_mismatch_rejected(self, diamond_clustered):
        from repro.utils import MappingError

        with pytest.raises(MappingError):
            simulate(diamond_clustered, ring(5), Assignment.identity(5))


class TestFifoBackpressure:
    def _bottleneck(self):
        """A fork that funnels four messages through the single 0-1 link."""
        g = TaskGraph(
            [1, 1, 1, 1, 1, 1],
            [(0, 5, 4), (1, 5, 4), (2, 5, 4), (3, 5, 4), (4, 5, 1)],
        )
        cg = ClusteredGraph(g, Clustering([0, 0, 0, 0, 0, 1]))
        system = chain(2)
        return cg, system, Assignment.identity(2)

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            SimConfig(link_contention=True, fifo_depth=0)
        with pytest.raises(ValueError):
            SimConfig(fifo_depth=1)  # FIFO depth needs link contention
        with pytest.raises(ValueError):
            MimdMachine(chain(2), fifo_depth=0)

    def test_grant_semantics_hand_checked(self):
        m = MimdMachine(chain(2), fifo_depth=1)
        first = m.acquire(0, 1, request_time=0, duration=5)
        assert (first.enqueue, first.start, first.end) == (0, 0, 5)
        assert not first.stall
        second = m.acquire(0, 1, request_time=0, duration=5)
        # The one-slot queue is full until t=5, so the sender stalls.
        assert second.stall
        assert (second.enqueue, second.start, second.end) == (5, 5, 10)
        assert m.fifo_stall_time() == 5
        assert m.max_queue_depth() <= 1

    def test_unbounded_queue_never_stalls(self):
        m = MimdMachine(chain(2))
        for _ in range(8):
            grant = m.acquire(0, 1, request_time=0, duration=3)
            assert not grant.stall
        assert m.fifo_stall_time() == 0
        assert m.max_queue_depth() == 8

    def test_bottleneck_records_stalls(self):
        cg, system, a = self._bottleneck()
        free = simulate(cg, system, a, SimConfig(link_contention=True))
        tight = simulate(
            cg, system, a, SimConfig(link_contention=True, fifo_depth=1)
        )
        assert tight.fifo_stall_time > 0
        assert tight.trace.stalls
        assert tight.fifo_stall_time == tight.trace.total_stall_time()
        assert tight.makespan >= free.makespan
        assert tight.max_queue_depth <= 1
        for rec in tight.trace.stalls:
            assert rec.end > rec.start
            assert rec.link == (0, 1)

    def test_fifo_never_beats_unbounded(self):
        for seed in range(4):
            clustered, system = random_instance(seed)
            a = Assignment.random(system.num_nodes, rng=seed)
            free = simulate(
                clustered, system, a, SimConfig(True, True)
            ).makespan
            for depth in (1, 2, 4):
                tight = simulate(
                    clustered,
                    system,
                    a,
                    SimConfig(True, True, fifo_depth=depth),
                )
                assert tight.makespan >= free
                assert tight.max_queue_depth <= depth

    def test_describe_includes_depth(self):
        cfg = SimConfig(link_contention=True, fifo_depth=2)
        assert "fifo=2" in cfg.describe()


class TestTraceJsonl:
    def _result(self, seed=3, **cfg):
        clustered, system = random_instance(seed)
        a = Assignment.random(system.num_nodes, rng=seed)
        config = SimConfig(**cfg) if cfg else SimConfig(True, True, fifo_depth=1)
        return simulate(clustered, system, a, config)

    def test_round_trip(self, tmp_path):
        result = self._result()
        path = tmp_path / "trace.jsonl"
        count = write_trace_jsonl(result, path)
        assert count == sum(path.read_text().count("\n") for _ in [0])
        loaded = read_trace_jsonl(path)
        assert loaded.trace == result.trace
        assert loaded.makespan == result.makespan
        assert loaded.fifo_stall_time == result.fifo_stall_time
        assert loaded.max_queue_depth == result.max_queue_depth
        assert loaded.config == result.config.describe()

    def test_rendered_gantt_identical(self, tmp_path):
        from repro.analysis import render_sim_gantt

        result = self._result(seed=4, serialize_processors=True)
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(result, path)
        loaded = read_trace_jsonl(path)
        assert render_sim_gantt(loaded) == render_sim_gantt(result)

    def test_missing_file_and_malformed_records(self, tmp_path):
        from repro.utils import GraphError

        with pytest.raises(GraphError):
            read_trace_jsonl(tmp_path / "nope.jsonl")
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "task", "task": 0}\n')  # no header
        with pytest.raises(GraphError, match="header"):
            read_trace_jsonl(path)
        result = self._result()
        write_trace_jsonl(result, path)
        with path.open("a") as fh:
            fh.write('{"record": "mystery"}\n')
        with pytest.raises(GraphError, match="mystery"):
            read_trace_jsonl(path)
