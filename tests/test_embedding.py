"""Tests for the embedding-quality module (dilation, congestion)."""

import pytest

from repro.baselines import cardinality
from repro.core import AbstractGraph, Assignment, ClusteredGraph, Clustering
from repro.topology import (
    analyze_embedding,
    chain,
    complete,
    edge_dilations,
    link_congestion,
)
from tests.conftest import random_instance


@pytest.fixture
def diamond_abstract(diamond_clustered):
    return AbstractGraph(diamond_clustered)


class TestDilation:
    def test_on_complete_host_all_one(self, diamond_abstract):
        dil = edge_dilations(diamond_abstract, complete(4), Assignment.identity(4))
        assert all(d == 1 for d in dil.values())

    def test_on_chain(self, diamond_abstract):
        dil = edge_dilations(diamond_abstract, chain(4), Assignment.identity(4))
        assert dil[(0, 1)] == 1
        assert dil[(0, 2)] == 2
        assert dil[(1, 3)] == 2
        assert dil[(2, 3)] == 1

    def test_dilation_one_count_equals_cardinality(self):
        for seed in range(6):
            clustered, system = random_instance(seed)
            abstract = AbstractGraph(clustered)
            a = Assignment.random(system.num_nodes, rng=seed)
            report = analyze_embedding(abstract, system, a)
            assert report.dilation_one_edges == cardinality(abstract, system, a)


class TestCongestion:
    def test_chain_middle_link_busiest(self, diamond_abstract):
        cong = link_congestion(diamond_abstract, chain(4), Assignment.identity(4))
        # Routes: (0,1):0-1; (0,2):0-1-2; (1,3):1-2-3; (2,3):2-3.
        assert cong[(0, 1)] == 2
        assert cong[(1, 2)] == 2
        assert cong[(2, 3)] == 2

    def test_weighted_congestion_uses_weights(self, diamond_abstract):
        plain = link_congestion(
            diamond_abstract, chain(4), Assignment.identity(4), weighted=False
        )
        weighted = link_congestion(
            diamond_abstract, chain(4), Assignment.identity(4), weighted=True
        )
        assert sum(weighted.values()) >= sum(plain.values())

    def test_congestion_conserves_route_length(self, diamond_abstract):
        """Total crossings == sum of dilations (each hop crosses one link)."""
        system = chain(4)
        a = Assignment.identity(4)
        cong = link_congestion(diamond_abstract, system, a)
        dil = edge_dilations(diamond_abstract, system, a)
        assert sum(cong.values()) == sum(dil.values())


class TestReport:
    def test_fields_consistent(self):
        clustered, system = random_instance(0)
        abstract = AbstractGraph(clustered)
        report = analyze_embedding(
            abstract, system, Assignment.random(system.num_nodes, rng=0)
        )
        assert 1 <= report.max_dilation <= system.diameter()
        assert 1.0 <= report.avg_dilation <= report.max_dilation
        assert report.dilation_one_edges <= report.total_guest_edges
        assert report.max_weighted_congestion >= report.max_congestion
        assert report.expansion == 1.0

    def test_str(self, diamond_abstract):
        text = str(analyze_embedding(diamond_abstract, chain(4), Assignment.identity(4)))
        assert "dilation" in text and "congestion" in text

    def test_no_edges_degenerate(self):
        from repro.core import TaskGraph

        g = TaskGraph([1, 1])
        cg = ClusteredGraph(g, Clustering([0, 1]))
        report = analyze_embedding(
            AbstractGraph(cg), chain(2), Assignment.identity(2)
        )
        assert report.max_dilation == 0
        assert report.total_guest_edges == 0
        assert report.max_congestion == 0
