"""Unit tests for repro.core.abstract (AbstractGraph)."""

import numpy as np
import pytest

from repro.core import AbstractGraph, ClusteredGraph, Clustering, TaskGraph


@pytest.fixture
def two_cluster(diamond_graph):
    """Diamond with clusters {0,1} and {2,3}; cut edges (0,2)=2 and (1,3)=2."""
    return AbstractGraph(ClusteredGraph(diamond_graph, Clustering([0, 0, 1, 1])))


class TestAbstractGraph:
    def test_adjacency(self, two_cluster):
        assert two_cluster.num_nodes == 2
        assert two_cluster.has_edge(0, 1)
        assert two_cluster.num_edges() == 1

    def test_weights_symmetric_and_summed(self, two_cluster):
        # Both directions of the cut edges accumulate: (0,2)+(1,3) = 4.
        assert two_cluster.weights[0, 1] == 4
        assert two_cluster.weights[1, 0] == 4

    def test_mca(self, two_cluster):
        assert two_cluster.mca.tolist() == [4, 4]

    def test_neighbors(self, two_cluster):
        assert two_cluster.neighbors(0).tolist() == [1]

    def test_isolated_cluster(self):
        g = TaskGraph([1, 1, 1], [(0, 1, 5)])
        ab = AbstractGraph(ClusteredGraph(g, Clustering([0, 0, 1])))
        assert ab.mca.tolist() == [0, 0]
        assert not ab.has_edge(0, 1)
        assert ab.num_edges() == 0

    def test_singleton_clusters_mirror_graph(self, diamond_graph):
        ab = AbstractGraph(
            ClusteredGraph(diamond_graph, Clustering([0, 1, 2, 3]))
        )
        # Abstract adjacency == undirected problem adjacency.
        undirected = (diamond_graph.prob_edge + diamond_graph.prob_edge.T) > 0
        assert np.array_equal(ab.abs_edge > 0, undirected)
        # mca == per-node total incident weight.
        expected = (diamond_graph.prob_edge + diamond_graph.prob_edge.T).sum(axis=1)
        assert np.array_equal(ab.mca, expected)

    def test_paper_example_mca(self):
        from repro.workloads import running_example_clustered

        ab = AbstractGraph(running_example_clustered())
        assert ab.mca.tolist() == [14, 11, 16, 7]
        assert ab.mca[1] == 11  # the entry Fig. 20-c confirms

    def test_weights_read_only(self, two_cluster):
        with pytest.raises(ValueError):
            two_cluster.weights[0, 1] = 3
        with pytest.raises(ValueError):
            two_cluster.abs_edge[0, 1] = 3
        with pytest.raises(ValueError):
            two_cluster.mca[0] = 3
