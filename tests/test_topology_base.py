"""Unit tests for repro.topology.base (SystemGraph)."""

import numpy as np
import pytest

from repro.topology import SystemGraph, chain, complete, ring
from repro.utils import GraphError


class TestConstruction:
    def test_from_edges(self):
        g = SystemGraph.from_edges(3, [(0, 1), (1, 2)])
        assert g.num_nodes == 3
        assert g.num_edges() == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_symmetrizes_input(self):
        adj = np.zeros((3, 3), dtype=int)
        adj[0, 1] = 1  # only one triangle filled
        adj[1, 2] = 1
        g = SystemGraph(adj)
        assert g.has_edge(1, 0)
        assert g.has_edge(2, 1)

    def test_disconnected_rejected(self):
        adj = np.zeros((4, 4), dtype=int)
        adj[0, 1] = adj[1, 0] = 1
        adj[2, 3] = adj[3, 2] = 1
        with pytest.raises(GraphError, match="connected"):
            SystemGraph(adj)

    def test_self_loop_rejected(self):
        adj = np.eye(2, dtype=int)
        with pytest.raises(GraphError, match="self-loop"):
            SystemGraph(adj)

    def test_non_square_rejected(self):
        with pytest.raises(GraphError):
            SystemGraph(np.zeros((2, 3)))

    def test_dangling_edge_rejected(self):
        with pytest.raises(GraphError, match="missing node"):
            SystemGraph.from_edges(2, [(0, 5)])

    def test_single_node(self):
        g = SystemGraph(np.zeros((1, 1), dtype=int))
        assert g.num_nodes == 1
        assert g.diameter() == 0
        assert g.average_distance() == 0.0


class TestShortestPaths:
    def test_ring_distances(self):
        g = ring(6)
        assert g.distance(0, 1) == 1
        assert g.distance(0, 3) == 3
        assert g.distance(0, 5) == 1
        assert g.diameter() == 3

    def test_chain_distances(self):
        g = chain(5)
        assert g.distance(0, 4) == 4
        assert g.diameter() == 4

    def test_shortest_matrix_symmetric_zero_diagonal(self):
        g = ring(7)
        assert np.array_equal(g.shortest, g.shortest.T)
        assert (np.diagonal(g.shortest) == 0).all()

    def test_triangle_inequality(self):
        g = ring(8)
        d = g.shortest
        n = g.num_nodes
        for a in range(n):
            for b in range(n):
                for c in range(n):
                    assert d[a, c] <= d[a, b] + d[b, c]

    def test_adjacent_iff_distance_one(self):
        g = ring(6)
        adj = g.sys_edge > 0
        assert np.array_equal(adj, g.shortest == 1)

    def test_shortest_path_endpoints_and_length(self):
        g = chain(6)
        path = g.shortest_path(1, 5)
        assert path[0] == 1 and path[-1] == 5
        assert len(path) - 1 == g.distance(1, 5)
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)

    def test_shortest_path_self(self):
        assert ring(4).shortest_path(2, 2) == [2]


class TestDerived:
    def test_degrees(self):
        g = ring(5)
        assert g.deg.tolist() == [2] * 5

    def test_closure(self):
        g = ring(6)
        c = g.closure()
        assert c.is_complete()
        assert c.num_edges() == 15
        assert c.diameter() == 1

    def test_is_complete(self):
        assert complete(4).is_complete()
        assert not ring(4).is_complete()

    def test_average_distance(self):
        # Complete graph: every distinct pair at distance 1.
        assert complete(5).average_distance() == pytest.approx(1.0)

    def test_edges_sorted_unique(self):
        g = ring(4)
        assert g.edges() == [(0, 1), (0, 3), (1, 2), (2, 3)]

    def test_neighbors(self):
        g = chain(4)
        assert g.neighbors(0).tolist() == [1]
        assert g.neighbors(1).tolist() == [0, 2]

    def test_equality(self):
        assert ring(5) == ring(5)
        assert ring(5) != chain(5)

    def test_networkx_export(self):
        g = ring(5)
        nx_g = g.to_networkx()
        assert nx_g.number_of_nodes() == 5
        assert nx_g.number_of_edges() == 5

    def test_read_only_views(self):
        g = ring(4)
        with pytest.raises(ValueError):
            g.sys_edge[0, 1] = 0
        with pytest.raises(ValueError):
            g.shortest[0, 1] = 9
        with pytest.raises(ValueError):
            g.deg[0] = 9
