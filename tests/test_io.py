"""Unit tests for the repro.io package (serialize, dot, matrixfmt)."""

import json

import numpy as np
import pytest

from repro.core import Assignment, ClusteredGraph, Clustering, collect_matrices
from repro.io import (
    assignment_from_dict,
    assignment_to_dict,
    clustered_graph_to_dot,
    clustering_from_dict,
    clustering_to_dict,
    format_matrix,
    format_paper_matrices,
    format_vector,
    load_instance,
    save_instance,
    system_graph_from_dict,
    system_graph_to_dict,
    task_graph_from_dict,
    task_graph_to_dict,
)
from repro.topology import hypercube, ring
from repro.utils import GraphError
from repro.workloads import (
    layered_random_dag,
    running_example_assignment_vector,
    running_example_clustered,
    running_example_system,
)


class TestSerialize:
    def test_task_graph_round_trip(self):
        g = layered_random_dag(num_tasks=30, rng=0)
        assert task_graph_from_dict(task_graph_to_dict(g)) == g

    def test_system_graph_round_trip(self):
        s = hypercube(3)
        assert system_graph_from_dict(system_graph_to_dict(s)) == s

    def test_clustering_round_trip(self):
        c = Clustering([0, 1, 0, 2])
        assert clustering_from_dict(clustering_to_dict(c)) == c

    def test_assignment_round_trip(self):
        a = Assignment([2, 0, 1, 3])
        assert assignment_from_dict(assignment_to_dict(a)) == a

    def test_json_serializable(self):
        g = layered_random_dag(num_tasks=20, rng=1)
        text = json.dumps(task_graph_to_dict(g))
        assert task_graph_from_dict(json.loads(text)) == g

    def test_instance_round_trip(self, tmp_path):
        g = layered_random_dag(num_tasks=20, rng=1)
        s = ring(5)
        c = Clustering([t % 5 for t in range(20)])
        a = Assignment([4, 3, 2, 1, 0])
        path = tmp_path / "instance.json"
        save_instance(path, g, s, c, a)
        g2, s2, c2, a2 = load_instance(path)
        assert g2 == g and s2 == s and c2 == c and a2 == a

    def test_instance_optional_parts(self, tmp_path):
        g = layered_random_dag(num_tasks=10, rng=2)
        s = ring(4)
        path = tmp_path / "bare.json"
        save_instance(path, g, s)
        g2, s2, c2, a2 = load_instance(path)
        assert g2 == g and s2 == s
        assert c2 is None and a2 is None

    def test_wrong_kind_rejected(self):
        with pytest.raises(GraphError, match="expected a serialized"):
            task_graph_from_dict({"kind": "assignment", "version": 1})

    def test_wrong_version_rejected(self):
        g = layered_random_dag(num_tasks=5, rng=0)
        data = task_graph_to_dict(g)
        data["version"] = 99
        with pytest.raises(GraphError, match="version"):
            task_graph_from_dict(data)


class TestDot:
    def test_task_graph_dot(self):
        from repro.io import task_graph_to_dot
        from repro.workloads import running_example_task_graph

        dot = task_graph_to_dot(running_example_task_graph())
        assert dot.startswith("digraph")
        assert dot.count("->") == 20  # one line per edge
        assert '"2"' in dot  # an edge weight label

    def test_system_graph_dot(self):
        from repro.io import system_graph_to_dot

        dot = system_graph_to_dot(ring(4))
        assert dot.startswith("graph")
        assert dot.count("--") == 4

    def test_clustered_dot_has_subgraphs(self):
        dot = clustered_graph_to_dot(running_example_clustered())
        assert dot.count("subgraph cluster_") == 4
        assert "style=dashed" in dot  # intra-cluster edges


class TestMatrixFmt:
    def test_format_matrix_blank_zeros(self):
        mat = np.asarray([[0, 2], [0, 0]])
        text = format_matrix(mat)
        assert "2" in text
        assert "0" not in text.splitlines()[-1]  # zeros blanked

    def test_format_matrix_explicit_zeros(self):
        mat = np.zeros((2, 2), dtype=int)
        text = format_matrix(mat, blank_zeros=False)
        assert "0" in text

    def test_format_vector(self):
        text = format_vector(np.asarray([0, 2, 3]), title="v")
        assert text.splitlines()[0] == "v"
        assert "2" in text

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            format_matrix(np.zeros(3))
        with pytest.raises(ValueError):
            format_vector(np.zeros((2, 2)))

    def test_full_paper_bundle(self):
        matrices = collect_matrices(
            running_example_clustered(),
            running_example_system(),
            Assignment(running_example_assignment_vector()),
        )
        text = format_paper_matrices(matrices)
        for fig in ("Fig. 18", "Fig. 19-a", "Fig. 20-b", "Fig. 21-a",
                    "Fig. 22-a", "Fig. 23-b", "Fig. 23-d"):
            assert fig in text

    def test_bundle_without_assignment(self):
        matrices = collect_matrices(
            running_example_clustered(), running_example_system()
        )
        assert matrices.assi is None
        text = format_paper_matrices(matrices)
        assert "Fig. 23-b" not in text


class TestPaperMatricesObject:
    def test_as_dict_keys(self):
        matrices = collect_matrices(
            running_example_clustered(), running_example_system()
        )
        d = matrices.as_dict()
        assert "prob_edge" in d and "crit_edge" in d
        assert "assi" not in d  # no assignment supplied

    def test_c_abs_edge_has_degree_column(self):
        matrices = collect_matrices(
            running_example_clustered(), running_example_system()
        )
        assert matrices.c_abs_edge.shape == (4, 5)
        assert matrices.c_abs_edge[0, 4] == 9  # critical degree of node 0


class TestJsonl:
    """The tail-tolerant JSONL reader's contract (see repro.io.jsonl)."""

    def write(self, tmp_path, text, name="records.jsonl"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_round_trip(self, tmp_path):
        from repro.io import read_jsonl, write_record

        records = [{"key": f"k{i}", "value": i} for i in range(5)]
        path = tmp_path / "records.jsonl"
        with path.open("w") as fh:
            for record in records:
                write_record(fh, record)
        assert read_jsonl(path) == records

    def test_dumps_record_is_canonical(self):
        from repro.io import dumps_record

        assert dumps_record({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_empty_file_is_empty_result(self, tmp_path):
        from repro.io import read_jsonl

        path = self.write(tmp_path, "")
        assert read_jsonl(path) == []
        assert read_jsonl(path, tolerate_partial=False) == []

    def test_blank_lines_skipped(self, tmp_path):
        from repro.io import read_jsonl

        path = self.write(tmp_path, '\n\n{"a": 1}\n\n   \n')
        assert read_jsonl(path) == [{"a": 1}]

    def test_torn_tail_after_many_records_dropped(self, tmp_path):
        from repro.io import read_jsonl

        good = [{"key": f"k{i}"} for i in range(4)]
        text = "".join(json.dumps(r) + "\n" for r in good)
        # the killed writer got half a record out, no trailing newline
        path = self.write(tmp_path, text + '{"key": "k4", "val')
        assert read_jsonl(path) == good

    def test_torn_tail_rejected_when_strict(self, tmp_path):
        from repro.io import read_jsonl

        path = self.write(tmp_path, '{"a": 1}\n{"b": ')
        with pytest.raises(GraphError, match="line 2"):
            read_jsonl(path, tolerate_partial=False)

    def test_torn_line_mid_file_always_raises(self, tmp_path):
        from repro.io import read_jsonl

        path = self.write(tmp_path, '{"a": 1}\n{"b": \n{"c": 3}\n')
        with pytest.raises(GraphError, match="line 2"):
            read_jsonl(path)

    @pytest.mark.parametrize("bad", ["[1, 2, 3]", '"a string"', "42", "null"])
    def test_non_dict_json_lines_always_raise(self, tmp_path, bad):
        # A parseable non-object can never be a torn record (no proper
        # prefix of a serialized object is valid JSON), so it is corruption
        # even on the final line, with or without tolerance.
        from repro.io import read_jsonl

        path = self.write(tmp_path, '{"a": 1}\n' + bad + "\n")
        with pytest.raises(GraphError, match="not an object"):
            read_jsonl(path)
        with pytest.raises(GraphError, match="not an object"):
            read_jsonl(path, tolerate_partial=False)

    def test_non_dict_mid_file_raises(self, tmp_path):
        from repro.io import read_jsonl

        path = self.write(tmp_path, '[]\n{"a": 1}\n')
        with pytest.raises(GraphError, match="line 1"):
            read_jsonl(path)
