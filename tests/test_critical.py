"""Unit tests for repro.core.critical (critical edges, Theorems 1-2)."""

import numpy as np
import pytest

from repro.core import (
    ClusteredGraph,
    Clustering,
    TaskGraph,
    analyze_criticality,
    ideal_schedule,
)


class TestCriticalEdges:
    def test_diamond_critical_chain(self, diamond_clustered):
        an = analyze_criticality(diamond_clustered)
        # Latest is 3; (1,3) tight (slack 0), (2,3) slack 2; (0,1) tight.
        assert an.critical_problem_edges() == [(0, 1), (1, 3)]
        assert an.crit_edge[0, 1] == 1
        assert an.crit_edge[1, 3] == 2
        assert an.crit_edge[2, 3] == 0

    def test_on_critical_path(self, diamond_clustered):
        an = analyze_criticality(diamond_clustered)
        assert an.on_critical_path.tolist() == [True, True, False, True]

    def test_tight_but_off_path_edge_not_critical(self):
        # 0 ->(tight) 1 (short) and 0 ->(tight) 2 (long): only (0,2) critical.
        g = TaskGraph([1, 1, 5], [(0, 1, 1), (0, 2, 1)])
        cg = ClusteredGraph(g, Clustering([0, 1, 2]))
        an = analyze_criticality(cg)
        assert an.critical_problem_edges() == [(0, 2)]

    def test_critical_abstract_edges_weights(self, diamond_clustered):
        an = analyze_criticality(diamond_clustered)
        # Singleton clusters: critical abstract edge (0,1) w=1, (1,3) w=2.
        assert an.c_abs_edge[0, 1] == 1
        assert an.c_abs_edge[1, 0] == 1
        assert an.c_abs_edge[1, 3] == 2
        assert an.c_abs_edge[2, 3] == 0

    def test_critical_degree(self, diamond_clustered):
        an = analyze_criticality(diamond_clustered)
        assert an.critical_degree.tolist() == [1, 3, 0, 2]
        assert np.array_equal(an.critical_degree, an.c_abs_edge.sum(axis=1))

    def test_clusters_with_critical_edges(self, diamond_clustered):
        an = analyze_criticality(diamond_clustered)
        assert an.clusters_with_critical_edges().tolist() == [0, 1, 3]

    def test_is_abstract_edge_critical(self, diamond_clustered):
        an = analyze_criticality(diamond_clustered)
        assert an.is_abstract_edge_critical(0, 1)
        assert not an.is_abstract_edge_critical(2, 3)

    def test_intra_propagation_default(self):
        """Criticality crosses a tight intra-cluster edge by default."""
        # chain 0 ->(w2, inter) 1 ->(intra) 2, clusters {0} {1,2}.
        g = TaskGraph([1, 1, 1], [(0, 1, 2), (1, 2, 1)])
        cg = ClusteredGraph(g, Clustering([0, 1, 1]))
        an = analyze_criticality(cg)
        # (1,2) intra tight -> propagates; (0,1) inter tight -> critical.
        assert (0, 1) in an.critical_problem_edges()
        assert (1, 2) in an.critical_problem_edges()
        assert an.c_abs_edge[0, 1] == 2  # only the inter weight counts

    def test_intra_propagation_disabled(self):
        g = TaskGraph([1, 1, 1], [(0, 1, 2), (1, 2, 1)])
        cg = ClusteredGraph(g, Clustering([0, 1, 1]))
        an = analyze_criticality(cg, propagate_through_intra=False)
        # The literal reading stops at the intra edge: nothing upstream marked.
        assert (0, 1) not in an.critical_problem_edges()
        assert an.c_abs_edge.sum() == 0

    def test_critical_edge_weight_is_clustered_weight(self, medium_instance):
        clustered, _ = medium_instance
        an = analyze_criticality(clustered)
        mask = an.crit_mask
        assert np.array_equal(an.crit_edge[mask], clustered.clus_edge[mask])
        assert (an.crit_edge[~mask] == 0).all()

    def test_critical_edges_are_tight(self, medium_instance):
        """Every critical edge has zero slack (necessary condition)."""
        clustered, _ = medium_instance
        ideal = ideal_schedule(clustered)
        an = analyze_criticality(clustered, ideal)
        for u, v in an.critical_problem_edges():
            assert ideal.i_edge[u, v] == clustered.clus_edge[u, v]

    def test_semantic_definition_on_small_instance(self, diamond_clustered):
        """Definition check: raising a critical edge's weight raises the
        bound; raising a non-critical edge's weight (by 1) does not."""
        from repro.core import lower_bound

        base = lower_bound(diamond_clustered)
        an = analyze_criticality(diamond_clustered)
        graph = diamond_clustered.graph
        for e in graph.edges():
            bumped = graph.prob_edge.copy()
            bumped[e.src, e.dst] += 1
            g2 = TaskGraph(graph.task_sizes, bumped)
            cg2 = ClusteredGraph(g2, diamond_clustered.clustering)
            new_bound = lower_bound(cg2)
            if an.crit_mask[e.src, e.dst]:
                assert new_bound > base, f"critical edge {e} did not raise bound"
            else:
                assert new_bound == base, f"non-critical edge {e} raised bound"

    def test_precomputed_ideal_accepted(self, diamond_clustered):
        ideal = ideal_schedule(diamond_clustered)
        an = analyze_criticality(diamond_clustered, ideal)
        assert an.ideal is ideal

    def test_paper_running_example_critical_structure(self):
        from repro.workloads import running_example_clustered

        an = analyze_criticality(running_example_clustered())
        assert an.critical_abstract_edges() == [(0, 1), (0, 2)]
        assert an.c_abs_edge[0, 1] == 3
        assert an.c_abs_edge[0, 2] == 6
        assert an.critical_degree[0] == 9
        # The edge the paper singles out: e79 (0-based (6, 8)).
        assert an.crit_mask[6, 8]
        assert an.crit_edge[6, 8] == 2

    def test_arrays_read_only(self, diamond_clustered):
        an = analyze_criticality(diamond_clustered)
        with pytest.raises(ValueError):
            an.crit_edge[0, 1] = 9
        with pytest.raises(ValueError):
            an.c_abs_edge[0, 1] = 9
