"""Delta-vs-full equivalence for the incremental evaluation subsystem.

The core guarantee of :class:`repro.core.DeltaEvaluator`: on *any* move
sequence — probes, commits, apply/revert chains, full rebases — every
aggregate (makespan, end times, communication volume, processor loads)
stays bit-for-bit equal to a from-scratch evaluation by the oracle in
:mod:`repro.core.evaluate`.  Checked across every topology family in
:mod:`repro.topology.generators` with randomized move sequences under
fixed seeds, plus a weighted-link machine.
"""

import numpy as np
import pytest

from repro.baselines.bokhari import cardinality
from repro.clustering import RandomClusterer
from repro.core import (
    AbstractGraph,
    Assignment,
    CardinalityDelta,
    ClusteredGraph,
    DeltaEvaluator,
    evaluate_assignment,
    total_time,
)
from repro.topology import (
    SystemGraph,
    binary_tree,
    butterfly,
    chain,
    chordal_ring,
    complete,
    complete_bipartite,
    cube_connected_cycles,
    de_bruijn,
    hypercube,
    mesh2d,
    mesh3d,
    petersen,
    random_connected,
    random_regular,
    ring,
    star,
    torus2d,
    torus3d,
)
from repro.utils import MappingError
from repro.workloads import layered_random_dag

TOPOLOGIES = [
    ("hypercube", lambda: hypercube(3)),
    ("mesh2d", lambda: mesh2d(2, 4)),
    ("mesh3d", lambda: mesh3d(2, 2, 2)),
    ("torus2d", lambda: torus2d(3, 3)),
    ("torus3d", lambda: torus3d(2, 2, 2)),
    ("ring", lambda: ring(6)),
    ("chain", lambda: chain(5)),
    ("star", lambda: star(6)),
    ("complete", lambda: complete(5)),
    ("complete_bipartite", lambda: complete_bipartite(3, 4)),
    ("binary_tree", lambda: binary_tree(3)),
    ("cube_connected_cycles", lambda: cube_connected_cycles(3)),
    ("de_bruijn", lambda: de_bruijn(3)),
    ("butterfly", lambda: butterfly(2)),
    ("chordal_ring", lambda: chordal_ring(8, 3)),
    ("petersen", petersen),
    ("random_connected", lambda: random_connected(7, rng=3)),
    ("random_regular", lambda: random_regular(8, 3, rng=3)),
    (
        "weighted_ring",
        lambda: SystemGraph(
            ring(5).sys_edge,
            name="weighted-ring-5",
            link_weights=np.where(ring(5).sys_edge > 0, 3, 0),
        ),
    ),
]


def _instance(system: SystemGraph, seed: int) -> ClusteredGraph:
    graph = layered_random_dag(num_tasks=4 * system.num_nodes, rng=seed)
    clustering = RandomClusterer(system.num_nodes).cluster(graph, rng=seed)
    return ClusteredGraph(graph, clustering)


class TestDeltaAcrossTopologies:
    @pytest.mark.parametrize("name,factory", TOPOLOGIES, ids=[n for n, _ in TOPOLOGIES])
    def test_random_move_sequences_match_oracle(self, name, factory):
        system = factory()
        clustered = _instance(system, seed=11)
        n = system.num_nodes
        gen = np.random.default_rng(20260729)
        shadow = Assignment.random(n, rng=7)
        ev = DeltaEvaluator(clustered, system, shadow)
        assert ev.verify()
        for step in range(30):
            a, b = (int(x) for x in gen.choice(n, size=2, replace=False))
            probed = ev.probe_swap(a, b)
            swapped = shadow.swapped(a, b)
            assert probed == total_time(clustered, system, swapped)
            action = step % 3
            if action == 0:  # probe only: state must be untouched
                assert ev.total_time == total_time(clustered, system, shadow)
            elif action == 1:  # commit
                assert ev.swap(a, b) == probed
                shadow = swapped
            else:  # apply + revert: must restore everything
                assert ev.apply_swap(a, b) == probed
                ev.revert()
            assert ev.verify(), f"{name} diverged at step {step}"

    @pytest.mark.parametrize("seed", range(4))
    def test_aggregates_track_schedule(self, seed):
        system = hypercube(3)
        clustered = _instance(system, seed=seed)
        a = Assignment.random(system.num_nodes, rng=seed)
        ev = DeltaEvaluator(clustered, system, a)
        gen = np.random.default_rng(seed)
        for _ in range(15):
            x, y = (int(v) for v in gen.choice(system.num_nodes, size=2, replace=False))
            predicted = ev.comm_volume + ev.delta_comm_volume(x, y)
            ev.swap(x, y)
            schedule = evaluate_assignment(clustered, system, ev.assignment)
            assert ev.comm_volume == predicted == schedule.communication_volume()
            assert np.array_equal(ev.loads(), schedule.processor_busy_time())
            assert np.array_equal(ev.end_times(), schedule.end)


class TestDeltaEvaluatorApi:
    def _setup(self, seed=0):
        system = mesh2d(2, 3)
        clustered = _instance(system, seed=seed)
        return clustered, system, Assignment.random(system.num_nodes, rng=seed)

    def test_delta_total_time_is_probe_minus_current(self):
        clustered, system, a = self._setup()
        ev = DeltaEvaluator(clustered, system, a)
        assert ev.delta_total_time(0, 4) == ev.probe_swap(0, 4) - ev.total_time
        assert ev.delta_total_time(2, 2) == 0

    def test_move_variant_swaps_with_occupant(self):
        clustered, system, a = self._setup(1)
        ev = DeltaEvaluator(clustered, system, a)
        target = 3
        occupant = ev.occupant(target)
        probed = ev.probe_move(0, target)
        assert probed == ev.probe_swap(0, occupant)
        ev.move(0, target)
        assert ev.assignment.system_of(0) == target
        assert ev.verify()

    def test_revert_chain_restores_initial_state(self):
        clustered, system, a = self._setup(2)
        ev = DeltaEvaluator(clustered, system, a)
        before = ev.end_times()
        moves = [(0, 1), (2, 5), (1, 4)]
        for x, y in moves:
            ev.apply_swap(x, y)
        for _ in moves:
            ev.revert()
        assert ev.assignment == a
        assert np.array_equal(ev.end_times(), before)
        assert ev.verify()

    def test_revert_without_apply_raises(self):
        clustered, system, a = self._setup(3)
        ev = DeltaEvaluator(clustered, system, a)
        with pytest.raises(MappingError, match="revert"):
            ev.revert()

    def test_swap_invalidates_pending_undo_history(self):
        # Regression: a plain commit between apply_swap and revert used to
        # let revert restore a state that no longer existed, silently
        # corrupting every aggregate.
        clustered, system, a = self._setup(7)
        ev = DeltaEvaluator(clustered, system, a)
        ev.apply_swap(0, 1)
        ev.swap(2, 5)
        with pytest.raises(MappingError, match="revert"):
            ev.revert()
        assert ev.verify()

    def test_evaluate_rebases_and_matches_oracle(self):
        clustered, system, a = self._setup(4)
        ev = DeltaEvaluator(clustered, system, a)
        other = Assignment.random(system.num_nodes, rng=99)
        assert ev.evaluate(other) == total_time(clustered, system, other)
        assert ev.assignment == other
        assert ev.verify()

    def test_mismatched_assignment_raises_mapping_error(self):
        clustered, system, _ = self._setup(5)
        # Regression: this used to fail deep inside numpy with IndexError.
        with pytest.raises(MappingError, match="assignment covers"):
            DeltaEvaluator(clustered, system, Assignment.identity(2))

    def test_cluster_processor_mismatch_raises(self):
        clustered, _, _ = self._setup(6)
        with pytest.raises(MappingError, match="na must equal ns"):
            DeltaEvaluator(clustered, ring(4), Assignment.identity(4))


class TestCardinalityDelta:
    @pytest.mark.parametrize("weighted", [False, True])
    def test_swap_sequences_match_full_recount(self, weighted):
        system = hypercube(3)
        clustered = _instance(system, seed=2)
        abstract = AbstractGraph(clustered)
        a = Assignment.random(system.num_nodes, rng=2)
        ev = CardinalityDelta(abstract, system, a, weighted=weighted)
        assert ev.cardinality == cardinality(abstract, system, a, weighted)
        gen = np.random.default_rng(2)
        for _ in range(25):
            x, y = (int(v) for v in gen.choice(system.num_nodes, size=2, replace=False))
            predicted = ev.cardinality + ev.delta_swap(x, y)
            assert ev.swap(x, y) == predicted
            assert ev.cardinality == cardinality(
                abstract, system, ev.assignment, weighted
            )

    def test_mismatched_sizes_raise(self):
        system = hypercube(3)
        clustered = _instance(system, seed=0)
        abstract = AbstractGraph(clustered)
        with pytest.raises(MappingError):
            CardinalityDelta(abstract, ring(4), Assignment.identity(4))
        with pytest.raises(MappingError):
            CardinalityDelta(abstract, system, Assignment.identity(4))
