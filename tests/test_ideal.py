"""Unit tests for repro.core.ideal (ideal schedule + lower bound)."""

import numpy as np
import pytest

from repro.core import ClusteredGraph, Clustering, TaskGraph, ideal_schedule, lower_bound


class TestIdealSchedule:
    def test_diamond_singleton(self, diamond_clustered):
        ideal = ideal_schedule(diamond_clustered)
        assert ideal.i_start.tolist() == [0, 3, 4, 8]
        assert ideal.i_end.tolist() == [2, 6, 5, 10]
        assert ideal.total_time == 10

    def test_diamond_merged_pair(self, diamond_graph):
        # Clusters {0,1} and {2,3}: edges (0,1) and (2,3) become free.
        cg = ClusteredGraph(diamond_graph, Clustering([0, 0, 1, 1]))
        ideal = ideal_schedule(cg)
        # 0:[0,2) 1:[2,5) (free edge), 2:[4,5) (comm 2), 3: max(5+2, 5+0)=7
        assert ideal.i_start.tolist() == [0, 2, 4, 7]
        assert ideal.total_time == 9

    def test_single_cluster_equals_critical_path_without_comm(self, diamond_graph):
        cg = ClusteredGraph(diamond_graph, Clustering([0, 0, 0, 0]))
        # All comm free: longest node-weight chain = 2+3+2 = 7.
        assert lower_bound(cg) == 7

    def test_ideal_edge_matrix(self, diamond_clustered):
        ideal = ideal_schedule(diamond_clustered)
        # i_edge[j][i] = i_start[i] - i_end[j] on problem edges.
        assert ideal.i_edge[0, 1] == 1  # 3 - 2
        assert ideal.i_edge[0, 2] == 2  # 4 - 2
        assert ideal.i_edge[1, 3] == 2  # 8 - 6
        assert ideal.i_edge[2, 3] == 3  # 8 - 5
        # Zero where no problem edge.
        assert ideal.i_edge[0, 3] == 0
        assert ideal.i_edge[3, 0] == 0

    def test_ideal_edge_at_least_clustered_weight(self, diamond_clustered):
        ideal = ideal_schedule(diamond_clustered)
        mask = diamond_clustered.prob_edge > 0
        assert (ideal.i_edge[mask] >= diamond_clustered.clus_edge[mask]).all()

    def test_slack(self, diamond_clustered):
        ideal = ideal_schedule(diamond_clustered)
        assert ideal.slack(0, 1) == 0  # tight
        assert ideal.slack(2, 3) == 2  # i_edge 3, weight 1

    def test_latest_tasks(self, diamond_clustered):
        ideal = ideal_schedule(diamond_clustered)
        assert ideal.latest_tasks().tolist() == [3]

    def test_multiple_latest_tasks(self):
        g = TaskGraph([1, 2, 2], [(0, 1, 1), (0, 2, 1)])
        cg = ClusteredGraph(g, Clustering([0, 1, 2]))
        ideal = ideal_schedule(cg)
        assert ideal.latest_tasks().tolist() == [1, 2]

    def test_entry_tasks_start_at_zero(self, medium_instance):
        clustered, _ = medium_instance
        ideal = ideal_schedule(clustered)
        for t in clustered.graph.sources().tolist():
            assert ideal.i_start[t] == 0

    def test_end_minus_start_is_size(self, medium_instance):
        clustered, _ = medium_instance
        ideal = ideal_schedule(clustered)
        assert np.array_equal(
            ideal.i_end - ideal.i_start, clustered.task_sizes
        )

    def test_precedence_respected(self, medium_instance):
        clustered, _ = medium_instance
        ideal = ideal_schedule(clustered)
        for e in clustered.graph.edges():
            assert (
                ideal.i_start[e.dst]
                >= ideal.i_end[e.src] + clustered.clus_edge[e.src, e.dst]
            )

    def test_coarser_clustering_never_raises_bound(self, diamond_graph):
        """Merging clusters only removes communication -> bound can't grow."""
        fine = lower_bound(ClusteredGraph(diamond_graph, Clustering([0, 1, 2, 3])))
        merged = lower_bound(ClusteredGraph(diamond_graph, Clustering([0, 0, 1, 1])))
        single = lower_bound(ClusteredGraph(diamond_graph, Clustering([0, 0, 0, 0])))
        assert single <= merged <= fine

    def test_arrays_read_only(self, diamond_clustered):
        ideal = ideal_schedule(diamond_clustered)
        with pytest.raises(ValueError):
            ideal.i_start[0] = 5
        with pytest.raises(ValueError):
            ideal.i_edge[0, 1] = 5

    def test_paper_running_example(self):
        from repro.workloads import (
            RUNNING_EXAMPLE_I_END,
            RUNNING_EXAMPLE_I_START,
            RUNNING_EXAMPLE_LOWER_BOUND,
            running_example_clustered,
        )

        ideal = ideal_schedule(running_example_clustered())
        assert ideal.i_start.tolist() == list(RUNNING_EXAMPLE_I_START)
        assert ideal.i_end.tolist() == list(RUNNING_EXAMPLE_I_END)
        assert ideal.total_time == RUNNING_EXAMPLE_LOWER_BOUND
        assert (ideal.latest_tasks() + 1).tolist() == [9, 11]
