"""Unit tests for repro.core.mapper (the end-to-end facade)."""

import pytest

from repro.core import (
    ClusteredGraph,
    CriticalEdgeMapper,
    evaluate_assignment,
    map_graph,
    total_time,
)
from repro.clustering import RandomClusterer
from repro.topology import hypercube, ring
from repro.workloads import layered_random_dag
from tests.conftest import random_instance


class TestCriticalEdgeMapper:
    def test_result_consistency(self):
        for seed in range(6):
            clustered, system = random_instance(seed)
            result = CriticalEdgeMapper(rng=seed).map(clustered, system)
            assert result.total_time == total_time(
                clustered, system, result.assignment
            )
            assert result.total_time >= result.lower_bound
            assert result.schedule.total_time == result.total_time
            assert result.initial_total_time == total_time(
                clustered, system, result.initial
            )
            assert result.total_time <= result.initial_total_time

    def test_percent_over_lower_bound(self):
        clustered, system = random_instance(0)
        result = CriticalEdgeMapper(rng=0).map(clustered, system)
        pct = result.percent_over_lower_bound()
        assert pct >= 100.0
        assert pct == pytest.approx(100.0 * result.total_time / result.lower_bound)

    def test_optimality_flag_matches_bound(self):
        for seed in range(6):
            clustered, system = random_instance(seed)
            result = CriticalEdgeMapper(rng=seed).map(clustered, system)
            assert result.is_provably_optimal == (
                result.total_time == result.lower_bound
            )

    def test_refinement_none(self):
        clustered, system = random_instance(1)
        result = CriticalEdgeMapper(refinement="none", rng=1).map(clustered, system)
        assert result.refinement.trials == 0
        assert result.assignment == result.initial

    def test_refinement_variants_all_valid(self):
        clustered, system = random_instance(2)
        for refinement in ("random", "pairwise", "none"):
            result = CriticalEdgeMapper(refinement=refinement, rng=2).map(
                clustered, system
            )
            assert result.total_time >= result.lower_bound

    def test_invalid_refinement_rejected(self):
        with pytest.raises(ValueError, match="refinement"):
            CriticalEdgeMapper(refinement="hillclimb")

    def test_unguided_ablation_runs(self):
        clustered, system = random_instance(3)
        result = CriticalEdgeMapper(use_critical_guidance=False, rng=3).map(
            clustered, system
        )
        # The blank analysis must wipe the guidance...
        assert result.total_time >= result.lower_bound
        # ...but the reported analysis is still the true one.
        assert result.analysis.crit_mask.any()

    def test_deterministic_with_seed(self):
        clustered, system = random_instance(4)
        a = CriticalEdgeMapper(rng=99).map(clustered, system)
        b = CriticalEdgeMapper(rng=99).map(clustered, system)
        assert a.assignment == b.assignment
        assert a.total_time == b.total_time

    def test_schedule_not_recomputed_when_refinement_kept_initial(self):
        clustered, system = random_instance(5)
        result = CriticalEdgeMapper(refinement="none", rng=5).map(clustered, system)
        expected = evaluate_assignment(clustered, system, result.initial)
        assert result.schedule.total_time == expected.total_time

    def test_worked_example_is_optimal(self):
        from repro.workloads import running_example_clustered, running_example_system

        result = CriticalEdgeMapper(rng=0).map(
            running_example_clustered(), running_example_system()
        )
        assert result.is_provably_optimal
        assert result.total_time == 14
        assert result.refinement.trials == 0


class TestMapGraphConvenience:
    def test_map_graph(self):
        graph = layered_random_dag(num_tasks=40, rng=1)
        clustering = RandomClusterer(num_clusters=8).cluster(graph, rng=1)
        result = map_graph(graph, clustering, hypercube(3), rng=1)
        assert result.total_time >= result.lower_bound

    def test_map_graph_forwards_kwargs(self):
        graph = layered_random_dag(num_tasks=40, rng=1)
        clustering = RandomClusterer(num_clusters=4).cluster(graph, rng=1)
        result = map_graph(
            graph, clustering, ring(4), rng=1, refinement="none"
        )
        assert result.refinement.trials == 0
