"""Tests for repro.service: fingerprints, store, cache, and the service."""

import pytest

from repro.api import ProblemInstance, Scenario, compare, solve, solve_many
from repro.clustering import RandomClusterer
from repro.core import ClusteredGraph
from repro.service import (
    MappingService,
    OutcomeCache,
    ResultStore,
    instance_fingerprint,
    outcome_from_dict,
    outcome_to_dict,
    scenario_fingerprint,
    set_default_service,
)
from repro.service import service as service_module
from repro.topology import SystemGraph, hypercube
from repro.utils import MappingError
from repro.workloads import layered_random_dag


class _DelegatingMapper:
    """Module-level (hence picklable) mapper used by the late-registration
    test; delegates to the paper's critical-edge strategy."""

    name = "late_test_mapper"

    def map(self, clustered, system, rng=None):
        from repro.api.registry import get_mapper

        return get_mapper("critical").map(clustered, system, rng=rng)


def make_instance(num_tasks=32, dim=3, seed=1):
    graph = layered_random_dag(num_tasks=num_tasks, rng=seed)
    system = hypercube(dim)
    clustering = RandomClusterer(num_clusters=system.num_nodes).cluster(
        graph, rng=seed
    )
    return graph, clustering, system


@pytest.fixture
def instance():
    return make_instance()


@pytest.fixture
def fresh_default():
    """Swap in an isolated default service; restore the previous one after."""
    service = MappingService(max_workers=2, cache_size=64)
    previous = set_default_service(service)
    yield service
    set_default_service(previous)
    service.close()


class TestFingerprint:
    def test_deterministic(self, instance):
        graph, clustering, system = instance
        clustered = ClusteredGraph(graph, clustering)
        fp1 = instance_fingerprint(clustered, system, "tabu", {"iterations": 5}, 7)
        fp2 = instance_fingerprint(clustered, system, "tabu", {"iterations": 5}, 7)
        assert fp1 == fp2
        assert len(fp1) == 64  # sha256 hex

    def test_param_order_irrelevant(self, instance):
        graph, clustering, system = instance
        clustered = ClusteredGraph(graph, clustering)
        a = instance_fingerprint(clustered, system, "m", {"a": 1, "b": 2}, 0)
        b = instance_fingerprint(clustered, system, "m", {"b": 2, "a": 1}, 0)
        assert a == b

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda g, c, s: (g, c, s, "random", {}, 7),  # different mapper
            lambda g, c, s: (g, c, s, "tabu", {"iterations": 9}, 7),  # params
            lambda g, c, s: (g, c, s, "tabu", {}, 8),  # seed
        ],
    )
    def test_sensitive_to_every_axis(self, instance, mutate):
        graph, clustering, system = instance
        clustered = ClusteredGraph(graph, clustering)
        base = instance_fingerprint(clustered, system, "tabu", {}, 7)
        g, c, s, mapper, params, seed = mutate(graph, clustering, system)
        assert instance_fingerprint(
            ClusteredGraph(g, c), s, mapper, params, seed
        ) != base

    def test_sensitive_to_graph_and_system(self, instance):
        graph, clustering, system = instance
        clustered = ClusteredGraph(graph, clustering)
        base = instance_fingerprint(clustered, system, "critical", {}, 0)
        g2, c2, s2 = make_instance(seed=2)
        other = instance_fingerprint(ClusteredGraph(g2, c2), s2, "critical", {}, 0)
        assert base != other

    def test_system_name_excluded(self, instance):
        graph, clustering, _ = instance
        clustered = ClusteredGraph(graph, clustering)
        a = instance_fingerprint(clustered, hypercube(3), "critical", {}, 0)
        renamed = hypercube(3)
        renamed.name = "some-other-label"
        b = instance_fingerprint(clustered, renamed, "critical", {}, 0)
        assert a == b

    def test_link_weights_included(self):
        import numpy as np

        graph = layered_random_dag(num_tasks=24, rng=3)
        clustering = RandomClusterer(num_clusters=4).cluster(graph, rng=3)
        clustered = ClusteredGraph(graph, clustering)
        adj = np.array(
            [[0, 1, 0, 1], [1, 0, 1, 0], [0, 1, 0, 1], [1, 0, 1, 0]]
        )
        unit = SystemGraph(adj)
        heavy_w = adj * 1
        heavy_w[0, 1] = heavy_w[1, 0] = 3
        heavy = SystemGraph(adj, link_weights=heavy_w)
        a = instance_fingerprint(clustered, unit, "critical", {}, 0)
        b = instance_fingerprint(clustered, heavy, "critical", {}, 0)
        assert a != b

    def test_scenario_fingerprint_ignores_replicas_and_name(self):
        kw = dict(
            workload="fft",
            workload_params={"points_log2": 3},
            topology="hypercube:2",
            mapper="critical",
            seed=5,
        )
        one = Scenario(replicas=1, **kw)
        many = Scenario(replicas=4, name="labelled", **kw)
        assert scenario_fingerprint(one, 0) == scenario_fingerprint(many, 0)
        assert scenario_fingerprint(many, 0) != scenario_fingerprint(many, 1)


class TestStore:
    def outcome(self):
        graph, clustering, system = make_instance()
        svc = MappingService()
        try:
            return svc.solve(graph, clustering, system, mapper="tabu", rng=7)
        finally:
            svc.close()

    def test_outcome_round_trip_lossless(self):
        outcome = self.outcome()
        data = outcome_to_dict(outcome)
        back = outcome_from_dict(data)
        assert outcome_to_dict(back) == data
        assert back.wall_time == outcome.wall_time
        assert (back.assignment.assi == outcome.assignment.assi).all()

    def test_durable_round_trip(self, tmp_path):
        outcome = self.outcome()
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        assert store.put("fp1", outcome)
        assert not store.put("fp1", outcome)  # first write wins
        store.close()

        reopened = ResultStore(path)
        assert reopened.recovered == 1
        assert "fp1" in reopened
        assert outcome_to_dict(reopened.get("fp1")) == outcome_to_dict(outcome)
        assert reopened.get("missing") is None

    def test_survives_torn_tail(self, tmp_path):
        outcome = self.outcome()
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put("fp1", outcome)
        store.put("fp2", outcome)
        store.close()
        with path.open("a") as fh:
            fh.write('{"fingerprint": "fp3", "outcome": {"mapper": "tr')  # torn
        reopened = ResultStore(path)
        assert reopened.recovered == 2
        assert "fp3" not in reopened

    def test_memory_only(self):
        outcome = self.outcome()
        store = ResultStore(None)
        store.put("fp", outcome)
        assert store.path is None
        assert len(store) == 1

    def test_put_after_close_refused(self, tmp_path):
        outcome = self.outcome()
        store = ResultStore(tmp_path / "s.jsonl")
        assert store.put("fp1", outcome)
        store.close()
        assert not store.put("fp2", outcome)  # refused, no reopened handle
        assert ResultStore(tmp_path / "s.jsonl").recovered == 1


class TestCache:
    def outcome(self, seed=1):
        graph, clustering, system = make_instance(seed=seed)
        svc = MappingService()
        try:
            return svc.solve(graph, clustering, system, rng=seed)
        finally:
            svc.close()

    def test_lru_eviction_falls_back_to_store(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        cache = OutcomeCache(capacity=2, store=store)
        outcomes = {f"fp{i}": self.outcome(seed=i) for i in range(3)}
        for fp, outcome in outcomes.items():
            cache.put(fp, outcome)
        assert len(cache) == 2  # fp0 evicted from memory...
        hit = cache.get("fp0")  # ...but promoted back from the store
        assert outcome_to_dict(hit) == outcome_to_dict(outcomes["fp0"])
        assert cache.stats()["hits"] == 1

    def test_miss_counts(self):
        cache = OutcomeCache(capacity=2)
        assert cache.get("nope") is None
        assert cache.stats()["misses"] == 1

    def test_capacity_validated(self):
        with pytest.raises(MappingError, match="capacity"):
            OutcomeCache(capacity=0)


class TestServiceSolve:
    def test_warm_cache_bit_identical_no_execution(self, instance, monkeypatch):
        """The acceptance property: the second identical solve is served
        from the cache — zero executions, zero pool contact — and the
        outcome is bit-identical, wall_time included."""
        graph, clustering, system = instance
        executions = []
        real = service_module._execute_solve
        monkeypatch.setattr(
            service_module,
            "_execute_solve",
            lambda task: executions.append(task) or real(task),
        )
        with MappingService(cache_size=8) as svc:
            first = svc.solve(graph, clustering, system, mapper="tabu", rng=7)
            assert len(executions) == 1
            # any pool contact from here on is a failure
            monkeypatch.setattr(
                MappingService,
                "executor",
                lambda self: pytest.fail("cache hit must not touch the pool"),
            )
            second = svc.solve(graph, clustering, system, mapper="tabu", rng=7)
            assert len(executions) == 1  # no recompute
            assert second is first
            assert outcome_to_dict(second) == outcome_to_dict(first)
            assert not svc.pool_started

    def test_different_seed_recomputes(self, instance):
        graph, clustering, system = instance
        with MappingService() as svc:
            svc.solve(graph, clustering, system, rng=1)
            svc.solve(graph, clustering, system, rng=2)
            assert svc.executed == 2

    def test_uncacheable_rng_always_executes(self, instance):
        import numpy as np

        graph, clustering, system = instance
        with MappingService() as svc:
            svc.solve(graph, clustering, system, rng=None)
            svc.solve(graph, clustering, system, rng=None)
            svc.solve(graph, clustering, system, rng=np.random.default_rng(3))
            assert svc.executed == 3
            assert svc.cache.stats()["stores"] == 0

    def test_instantiated_mapper_bypasses_cache(self, instance):
        from repro.api import get_mapper

        graph, clustering, system = instance
        with MappingService() as svc:
            mapper = get_mapper("critical")
            svc.solve(graph, clustering, system, mapper=mapper, rng=1)
            svc.solve(graph, clustering, system, mapper=mapper, rng=1)
            assert svc.executed == 2

    def test_instantiated_mapper_with_params_raises(self, instance):
        from repro.api import get_mapper

        graph, clustering, system = instance
        with MappingService() as svc:
            with pytest.raises(TypeError, match="mapper \\*name\\*"):
                svc.solve(
                    graph, clustering, system,
                    mapper=get_mapper("critical"), rng=1, samples=5,
                )

    def test_durable_store_survives_restart(self, instance, tmp_path):
        graph, clustering, system = instance
        path = tmp_path / "results.jsonl"
        with MappingService(store_path=path) as svc:
            first = svc.solve(graph, clustering, system, mapper="tabu", rng=7)
            assert svc.executed == 1
        with MappingService(store_path=path) as svc2:
            again = svc2.solve(graph, clustering, system, mapper="tabu", rng=7)
            assert svc2.executed == 0  # recovered, not recomputed
            assert outcome_to_dict(again) == outcome_to_dict(first)

    def test_closed_service_rejects_work(self, instance):
        graph, clustering, system = instance
        svc = MappingService()
        svc.close()
        with pytest.raises(MappingError, match="closed"):
            svc.executor()
        with pytest.raises(MappingError, match="closed"):
            svc.solve(graph, clustering, system, rng=1)
        with pytest.raises(MappingError, match="closed"):
            svc.submit(graph, clustering, system, rng=1)

    def test_bad_worker_count(self):
        with pytest.raises(MappingError, match="max_workers"):
            MappingService(max_workers=0)


class TestServiceJobs:
    def test_submit_runs_and_caches(self, instance):
        graph, clustering, system = instance
        with MappingService(max_workers=2) as svc:
            job = svc.submit(graph, clustering, system, mapper="critical", rng=3)
            outcome = job.result(timeout=60)
            assert job.status == "done"
            assert job.done()
            assert not job.cached
            assert svc.job(job.id) is job
            # identical re-submission: answered from cache, new job id
            job2 = svc.submit(graph, clustering, system, mapper="critical", rng=3)
            assert job2.cached
            assert job2.status == "done"
            assert job2.id != job.id
            assert outcome_to_dict(job2.result()) == outcome_to_dict(outcome)

    def test_inflight_deduplication(self, instance):
        from concurrent.futures import Future

        graph, clustering, system = instance

        class FakePool:
            def __init__(self):
                self.futures = []

            def submit(self, fn, *args):
                future = Future()
                self.futures.append((future, fn, args))
                return future

        with MappingService() as svc:
            pool = FakePool()
            svc.executor = lambda: pool
            j1 = svc.submit(graph, clustering, system, mapper="tabu", rng=5)
            j2 = svc.submit(graph, clustering, system, mapper="tabu", rng=5)
            assert j1 is j2  # same inflight job, not a second execution
            assert len(pool.futures) == 1
            future, fn, args = pool.futures[0]
            future.set_result(fn(*args))  # complete it "on the pool"
            assert j1.status == "done"
            # now that it is cached, a new submit is a cached job
            j3 = svc.submit(graph, clustering, system, mapper="tabu", rng=5)
            assert j3.cached and j3 is not j1

    def test_submit_scenario_and_cache(self):
        scenario = Scenario(
            workload="fft",
            workload_params={"points_log2": 3},
            topology="hypercube:2",
            mapper="critical",
            seed=11,
        )
        with MappingService(max_workers=2) as svc:
            job = svc.submit_scenario(scenario)
            outcome = job.result(timeout=60)
            assert outcome.total_time >= outcome.lower_bound
            again = svc.submit_scenario(scenario)
            assert again.cached
            assert outcome_to_dict(again.result()) == outcome_to_dict(outcome)

    def test_submit_scenario_replica_range(self):
        scenario = Scenario(
            workload="fft", workload_params={"points_log2": 3},
            topology="hypercube:2", replicas=2,
        )
        with MappingService() as svc:
            with pytest.raises(MappingError, match="replica 2 out of range"):
                svc.submit_scenario(scenario, replica=2)

    def test_failed_job_reports_error(self):
        # 4 tasks cannot fill an 8-node hypercube -> worker-side failure
        scenario = Scenario(
            workload="layered_random", workload_params={"num_tasks": 4},
            topology="hypercube:3",
        )
        with MappingService(max_workers=2) as svc:
            job = svc.submit_scenario(scenario)
            with pytest.raises(MappingError):
                job.result(timeout=60)
            assert job.status == "failed"
            assert "every node needs a cluster" in job.error
            assert job.to_dict()["status"] == "failed"
            # a failure is not cached: the next submit tries again
            retry = svc.submit_scenario(scenario)
            assert not retry.cached

    def test_failed_scheduling_releases_fingerprint(self, instance):
        graph, clustering, system = instance
        with MappingService(max_workers=2) as svc:
            def boom():
                raise MappingError("no pool today")

            svc.executor = boom
            with pytest.raises(MappingError, match="no pool today"):
                svc.submit(graph, clustering, system, mapper="tabu", rng=9)
            zombie = svc.jobs()[-1]
            assert zombie.status == "failed"  # resolved, not stuck pending
            assert "could not be scheduled" in zombie.error
            del svc.executor  # back to the real (class-level) pool
            retry = svc.submit(graph, clustering, system, mapper="tabu", rng=9)
            assert retry is not zombie  # fingerprint was reclaimed
            assert retry.result(timeout=60).total_time >= 1

    def test_job_to_dict_shapes(self, instance):
        graph, clustering, system = instance
        with MappingService(max_workers=2) as svc:
            job = svc.submit(graph, clustering, system, rng=1)
            job.result(timeout=60)
            payload = job.to_dict()
            assert payload["id"] == job.id
            assert payload["status"] == "done"
            assert payload["outcome"]["total_time"] >= payload["outcome"]["lower_bound"]

    def test_jobs_listing(self, instance):
        graph, clustering, system = instance
        with MappingService(max_workers=2) as svc:
            assert svc.jobs() == []
            job = svc.submit(graph, clustering, system, rng=1)
            job.result(timeout=60)
            assert [j.id for j in svc.jobs()] == [job.id]
            assert svc.job("job-999") is None

    def test_cancelled_queued_job_resolves_instead_of_hanging(self, instance):
        from concurrent.futures import Future

        graph, clustering, system = instance

        class FakePool:
            def submit(self, fn, *args):
                return Future()  # never runs; stays pending until cancelled

        svc = MappingService()
        svc.executor = lambda: FakePool()
        job = svc.submit(graph, clustering, system, mapper="tabu", rng=5)
        assert job.status == "pending"
        job._backing.cancel()  # what pool.shutdown(cancel_futures=True) does
        assert job.status == "failed"
        assert "cancelled" in job.error
        with pytest.raises(MappingError, match="cancelled"):
            job.result(timeout=1)
        # a retry is possible: the inflight slot was released
        retry = svc.submit(graph, clustering, system, mapper="tabu", rng=5)
        assert retry is not job

    def test_running_status_reflects_backing_future(self, instance):
        from concurrent.futures import Future

        graph, clustering, system = instance

        class FakePool:
            def submit(self, fn, *args):
                return Future()

        svc = MappingService()
        svc.executor = lambda: FakePool()
        job = svc.submit(graph, clustering, system, rng=1)
        assert job.status == "pending"
        job._backing.set_running_or_notify_cancel()
        assert job.status == "running"

    def test_job_history_bounded_finished_only(self, instance):
        graph, clustering, system = instance
        with MappingService(max_workers=2, job_history=3) as svc:
            first = svc.submit(graph, clustering, system, mapper="critical", rng=1)
            first.result(timeout=60)
            # cached re-submissions finish instantly and churn the history
            for _ in range(6):
                svc.submit(graph, clustering, system, mapper="critical", rng=1)
            jobs = svc.jobs()
            assert len(jobs) == 3
            assert all(j.done() for j in jobs)
            assert svc.job(first.id) is None  # oldest finished job evicted

        with pytest.raises(MappingError, match="job_history"):
            MappingService(job_history=0)

    def test_cache_hit_job_survives_full_inflight_history(self, instance):
        from concurrent.futures import Future

        graph, clustering, system = instance

        class FakePool:
            def submit(self, fn, *args):
                return Future()  # stays in flight

        with MappingService(job_history=2) as svc:
            # seed the cache inline, then fill the history with in-flight jobs
            done = svc.solve(graph, clustering, system, mapper="critical", rng=1)
            svc.executor = lambda: FakePool()
            for seed in (101, 102):
                svc.submit(graph, clustering, system, mapper="critical", rng=seed)
            hit = svc.submit(graph, clustering, system, mapper="critical", rng=1)
            assert hit.cached
            # over budget, but the only evictable done job is the one just
            # handed out — it must stay addressable for the client's poll
            assert svc.job(hit.id) is hit
            assert outcome_to_dict(hit.result()) == outcome_to_dict(done)

    def test_late_registration_needs_pool_restart(self, instance):
        from repro.api.registry import MAPPERS, register_mapper

        scenario_kw = dict(
            workload="fft", workload_params={"points_log2": 3},
            topology="hypercube:2", seed=21,
        )
        try:
            with MappingService(max_workers=1) as svc:
                # warm the (single-worker) pool before the mapper exists
                warm = svc.submit_scenario(Scenario(mapper="critical", **scenario_kw))
                warm.result(timeout=60)
                register_mapper("late_test_mapper")(_DelegatingMapper)
                late = Scenario(mapper="late_test_mapper", **scenario_kw)
                job = svc.submit_scenario(late)
                with pytest.raises(MappingError, match="unknown mapper"):
                    job.result(timeout=60)
                # after a pool restart the fresh worker sees the registration
                svc.restart_pool()
                retry = svc.submit_scenario(late)
                assert retry.result(timeout=60).total_time >= 1
        finally:
            MAPPERS._factories.pop("late_test_mapper", None)


class TestPoolPolicy:
    """Satellite: workers=1 / tiny batches never touch a process pool."""

    def _no_service(self, monkeypatch):
        def boom():
            raise AssertionError("inline path must not contact the service pool")

        # iter_item_outcomes resolves the default service through the
        # package namespace at call time — patch it there.
        monkeypatch.setattr("repro.service.default_service", boom)

    def test_solve_many_workers_1_is_inline(self, instance, monkeypatch):
        self._no_service(monkeypatch)
        graph, clustering, system = instance
        clustered = ClusteredGraph(graph, clustering)
        outcomes = solve_many(
            [ProblemInstance(clustered, system)] * 3, mapper="critical",
            seed=1, max_workers=1,
        )
        assert len(outcomes) == 3

    def test_single_item_is_inline_at_any_worker_count(self, instance, monkeypatch):
        self._no_service(monkeypatch)
        graph, clustering, system = instance
        clustered = ClusteredGraph(graph, clustering)
        outcomes = solve_many(
            [ProblemInstance(clustered, system)], mapper="critical",
            seed=1, max_workers=8,
        )
        assert len(outcomes) == 1

    def test_compare_workers_1_is_inline(self, instance, monkeypatch):
        self._no_service(monkeypatch)
        graph, clustering, system = instance
        outcomes = compare(
            ClusteredGraph(graph, clustering), system,
            mappers=["critical", "random"], seed=1, max_workers=1,
        )
        assert [o.mapper for o in outcomes] == ["critical", "random"]

    def test_run_scenarios_workers_1_is_inline(self, monkeypatch):
        from repro.api import run_scenarios

        self._no_service(monkeypatch)
        scenarios = [
            Scenario(
                workload="fft", workload_params={"points_log2": 3},
                topology="hypercube:2", seed=3,
            )
        ]
        result = run_scenarios(scenarios, max_workers=1)
        assert result.executed == 1

    def test_parallel_batch_uses_shared_service_pool(self, instance, fresh_default):
        graph, clustering, system = instance
        clustered = ClusteredGraph(graph, clustering)
        instances = [ProblemInstance(clustered, system)] * 4
        serial = solve_many(instances, mapper="random", seed=9, samples=5,
                            max_workers=1)
        parallel = solve_many(instances, mapper="random", seed=9, samples=5,
                              max_workers=2)
        assert fresh_default.pool_started  # parallel work landed on the service
        assert [o.total_time for o in serial] == [o.total_time for o in parallel]
        assert [
            o.assignment.assi.tolist() for o in serial
        ] == [o.assignment.assi.tolist() for o in parallel]

    def test_run_on_pool_windows_items(self, fresh_default, instance):
        # 6 items through a 2-wide window on the shared pool: all finish,
        # results fold back into input order.
        graph, clustering, system = instance
        clustered = ClusteredGraph(graph, clustering)
        items = [ProblemInstance(clustered, system, name=f"i{i}") for i in range(6)]
        outcomes = solve_many(items, mapper="critical", seed=0, max_workers=2)
        assert len(outcomes) == 6
        assert all(o.total_time >= o.lower_bound for o in outcomes)


class TestFacadeIntegration:
    def test_facade_solve_is_cached_via_default_service(self, instance, fresh_default):
        graph, clustering, system = instance
        first = solve(graph, clustering, system, mapper="tabu", rng=13)
        second = solve(graph, clustering, system, mapper="tabu", rng=13)
        assert second is first
        assert fresh_default.cache.stats()["hits"] == 1

    def test_set_default_service_restores(self):
        svc = MappingService()
        previous = set_default_service(svc)
        try:
            from repro.service import default_service

            assert default_service() is svc
        finally:
            set_default_service(previous)
            svc.close()
