"""Shared fixtures: small hand-checkable instances used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import RandomClusterer
from repro.core import Assignment, ClusteredGraph, Clustering, TaskGraph
from repro.topology import SystemGraph, hypercube, mesh2d, ring
from repro.workloads import layered_random_dag


@pytest.fixture
def diamond_graph() -> TaskGraph:
    """The smallest interesting DAG: 0 -> {1, 2} -> 3.

    Sizes 2/3/1/2; edges (0,1)=1, (0,2)=2, (1,3)=2, (2,3)=1.
    Hand-computed ideal schedule (four singleton clusters):
        task 0: [0, 2)        task 1: [3, 6)
        task 2: [4, 5)        task 3: [8, 10)   (via 1: 6+2=8; via 2: 5+1=6)
    """
    return TaskGraph([2, 3, 1, 2], [(0, 1, 1), (0, 2, 2), (1, 3, 2), (2, 3, 1)])


@pytest.fixture
def diamond_clustered(diamond_graph: TaskGraph) -> ClusteredGraph:
    """Diamond graph with singleton clusters (na == np == 4)."""
    return ClusteredGraph(diamond_graph, Clustering([0, 1, 2, 3]))


@pytest.fixture
def chain_graph() -> TaskGraph:
    """A 4-task chain with unit sizes and weights 3, 1, 2."""
    return TaskGraph([1, 1, 1, 1], [(0, 1, 3), (1, 2, 1), (2, 3, 2)])


@pytest.fixture
def ring4() -> SystemGraph:
    return ring(4)


@pytest.fixture
def q3() -> SystemGraph:
    return hypercube(3)


@pytest.fixture
def mesh23() -> SystemGraph:
    return mesh2d(2, 3)


@pytest.fixture
def medium_instance() -> tuple[ClusteredGraph, SystemGraph]:
    """A seeded 60-task instance on a 3-cube, shared by integration tests."""
    graph = layered_random_dag(num_tasks=60, rng=123)
    clustering = RandomClusterer(num_clusters=8).cluster(graph, rng=123)
    return ClusteredGraph(graph, clustering), hypercube(3)


def random_instance(
    seed: int,
    num_tasks: int = 40,
    system: SystemGraph | None = None,
) -> tuple[ClusteredGraph, SystemGraph]:
    """Helper (not a fixture) for parameterized randomized tests."""
    system = system or hypercube(3)
    graph = layered_random_dag(num_tasks=num_tasks, rng=seed)
    clustering = RandomClusterer(num_clusters=system.num_nodes).cluster(
        graph, rng=seed
    )
    return ClusteredGraph(graph, clustering), system
