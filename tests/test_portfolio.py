"""Tests for repro.portfolio: anytime hooks, the racing fold, the
registered portfolio mapper, and the learned-defaults recommender."""

import json
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.api import Scenario, available_mappers, get_mapper
from repro.api.scenario import ScenarioError
from repro.baselines.annealing import anneal_mapping
from repro.clustering import RandomClusterer
from repro.core import ClusteredGraph, evaluate_assignment
from repro.core.anytime import FileReporter, active_reporter, use_reporter
from repro.core.assignment import Assignment
from repro.portfolio import (
    DEFAULT_ARMS,
    ArmSpec,
    ObjectiveScorer,
    RaceFold,
    arm_seeds,
    arms_from_payload,
    family_of,
    merge_payloads,
    mine_records,
    race,
)
from repro.service import (
    MappingService,
    ServiceSaturatedError,
    set_default_service,
)
from repro.topology import hypercube
from repro.utils import MappingError
from repro.workloads import layered_random_dag


def make_instance(num_tasks=96, dim=3, seed=11):
    graph = layered_random_dag(num_tasks=num_tasks, rng=seed)
    system = hypercube(dim)
    clustering = RandomClusterer(num_clusters=system.num_nodes).cluster(
        graph, rng=seed
    )
    return ClusteredGraph(graph, clustering), system


@pytest.fixture(scope="module")
def instance():
    return make_instance()


@pytest.fixture
def fresh_default():
    """Swap in an isolated default service; restore the previous one after."""
    service = MappingService(max_workers=2, cache_size=64)
    previous = set_default_service(service)
    yield service
    set_default_service(previous)
    service.close()


class _ListReporter:
    """In-memory AnytimeReporter: records checkpoints, stops on demand."""

    def __init__(self, stop_after=None):
        self.checkpoints = []
        self.stop_after = stop_after

    def report(self, iteration, best_metric, best_assignment):
        self.checkpoints.append((int(iteration), float(best_metric)))

    def should_stop(self):
        return (
            self.stop_after is not None
            and len(self.checkpoints) >= self.stop_after
        )


class _ExplodingMapper:
    """Module-level (picklable) mapper that always fails."""

    name = "exploding_test_mapper"

    def map(self, clustered, system, rng=None):
        raise RuntimeError("boom")


class TestAnytime:
    def test_file_reporter_stream_and_stop(self, tmp_path):
        ckpt = str(tmp_path / "arm.jsonl")
        stop = str(tmp_path / "arm.stop")
        reporter = FileReporter(ckpt, stop, "total_time")
        assert not reporter.should_stop()
        assignment = Assignment([2, 0, 1])
        reporter.report(10, 42.0, assignment)
        reporter.report(20, 41.0, assignment)
        lines = [json.loads(l) for l in open(ckpt)]
        assert [l["checkpoint"] for l in lines] == [1, 2]
        assert lines[0] == {
            "checkpoint": 1,
            "iteration": 10,
            "label": "total_time",
            "value": 42.0,
            "assignment": [2, 0, 1],
        }
        (tmp_path / "arm.stop").touch()
        assert reporter.should_stop()
        assert reporter.checkpoints_written == 2

    def test_use_reporter_stack(self):
        assert active_reporter() is None
        outer, inner = _ListReporter(), _ListReporter()
        with use_reporter(outer):
            assert active_reporter() is outer
            with use_reporter(inner):
                assert active_reporter() is inner
            assert active_reporter() is outer
        assert active_reporter() is None

    def test_annealing_never_stopped_bit_identical(self, instance):
        clustered, system = instance
        plain = anneal_mapping(clustered, system, rng=5)
        reporter = _ListReporter()
        hooked = anneal_mapping(clustered, system, rng=5, reporter=reporter)
        assert np.array_equal(plain.assignment.assi, hooked.assignment.assi)
        assert plain.total_time == hooked.total_time
        assert plain.evaluations == hooked.evaluations
        assert len(reporter.checkpoints) > 0

    def test_annealing_stops_gracefully_with_best_so_far(self, instance):
        clustered, system = instance
        full = anneal_mapping(clustered, system, rng=5)
        reporter = _ListReporter(stop_after=3)
        stopped = anneal_mapping(clustered, system, rng=5, reporter=reporter)
        assert stopped.evaluations < full.evaluations
        assert len(reporter.checkpoints) == 3
        # The returned best is a real assignment whose time evaluates.
        schedule = evaluate_assignment(clustered, system, stopped.assignment)
        assert schedule.total_time == stopped.total_time


class TestObjectiveScorer:
    def test_comm_volume_matches_schedule(self, instance):
        clustered, system = instance
        scorer = ObjectiveScorer(clustered, system, "comm_volume")
        rng = np.random.default_rng(3)
        for _ in range(5):
            assignment = Assignment.random(system.num_nodes, rng=rng)
            schedule = evaluate_assignment(clustered, system, assignment)
            assert scorer.score_assignment(assignment) == float(
                schedule.communication_volume()
            )

    def test_total_time_matches_schedule(self, instance):
        clustered, system = instance
        scorer = ObjectiveScorer(clustered, system, "total_time")
        assignment = Assignment.random(system.num_nodes, rng=9)
        schedule = evaluate_assignment(clustered, system, assignment)
        assert scorer.score_assignment(assignment) == float(schedule.total_time)

    def test_unknown_objective_rejected(self, instance):
        clustered, system = instance
        with pytest.raises(MappingError, match="unknown racing objective"):
            ObjectiveScorer(clustered, system, "latency")


class TestRaceFold:
    def test_needs_two_arms(self):
        with pytest.raises(MappingError, match=">= 2 arms"):
            RaceFold(1, 1.5)

    def test_kill_ratio_validated(self):
        with pytest.raises(MappingError, match="kill_ratio"):
            RaceFold(2, 0.9)

    def test_ratio_kill_at_first_ordinal(self):
        fold = RaceFold(2, 1.5)
        fold.add_checkpoint(0, 10.0)
        fold.add_checkpoint(1, 100.0)
        assert fold.advance() == [1]
        assert fold.killed_at == {1: 1}
        assert fold.killed_value[1] == 100.0

    def test_close_values_survive_ratio(self):
        fold = RaceFold(2, 1.5)
        fold.add_checkpoint(0, 10.0)
        fold.add_checkpoint(1, 12.0)
        assert fold.advance() == []
        assert fold.killed_at == {}

    def test_best_arm_never_killed(self):
        fold = RaceFold(3, 1.5)
        for arm, value in ((0, 10.0), (1, 16.0), (2, 17.0)):
            fold.add_checkpoint(arm, value)
        assert sorted(fold.advance()) == [1, 2]
        assert 0 in fold.active

    def test_finished_arm_dominates_trailing_arm(self):
        fold = RaceFold(2, 10.0)  # ratio rule effectively off
        fold.add_checkpoint(0, 6.0)
        fold.set_final(0, 5.0)
        fold.add_checkpoint(1, 7.0)
        assert fold.advance() == []  # ordinal 1: both have values
        fold.add_checkpoint(1, 6.5)
        # Ordinal 2: arm 0's stream ended before it with final 5.0 < 6.5.
        assert fold.advance() == [1]
        assert fold.killed_at == {1: 2}

    def test_failed_arm_drops_silently(self):
        fold = RaceFold(2, 1.5)
        fold.add_checkpoint(1, 9.0)
        fold.set_failed(0)
        assert fold.advance() == []
        assert fold.killed_at == {}
        assert fold.active == {1}

    def test_verdict_invariant_to_arrival_interleaving(self):
        streams = {0: [6.0], 1: [7.0, 6.5, 6.2]}
        final = {0: 5.0}

        def run_schedule(interleaved):
            fold = RaceFold(2, 10.0)
            if interleaved:
                fold.add_checkpoint(0, streams[0][0])
                fold.add_checkpoint(1, streams[1][0])
                fold.advance()
                fold.set_final(0, final[0])
                fold.advance()
                for value in streams[1][1:]:
                    if 1 in fold.killed_at:
                        break
                    fold.add_checkpoint(1, value)
                    fold.advance()
            else:
                for value in streams[1]:
                    fold.add_checkpoint(1, value)
                fold.advance()
                fold.add_checkpoint(0, streams[0][0])
                fold.set_final(0, final[0])
                fold.advance()
            return dict(fold.killed_at)

        assert run_schedule(True) == run_schedule(False) == {1: 2}


class TestRace:
    ARMS = None  # built lazily: registry imports at module scope are fine

    @staticmethod
    def build_arms():
        return [
            ArmSpec("critical", {}, get_mapper("critical")),
            ArmSpec("annealing", {}, get_mapper("annealing")),
        ]

    def test_winner_bit_identical_to_solo(self, instance):
        clustered, system = instance
        arms = self.build_arms()
        result = race(clustered, system, arms, rng=21)
        seed = arm_seeds(21, len(arms))[result.winner]
        solo = arms[result.winner].mapper.map(clustered, system, rng=seed)
        assert np.array_equal(
            result.outcome.assignment.placement, solo.assignment.placement
        )
        assert result.outcome.total_time == solo.total_time

    def test_repeat_race_byte_identical_diagnostics(self, instance):
        clustered, system = instance
        first = race(clustered, system, self.build_arms(), rng=21)
        second = race(clustered, system, self.build_arms(), rng=21)
        assert first.winner == second.winner
        assert json.dumps(first.arms, sort_keys=True) == json.dumps(
            second.arms, sort_keys=True
        )

    def test_explicit_executor_matches_default_pool(self, instance):
        # The explicit-executor branch ships the instance via a pickle
        # file instead of fork inheritance; the verdict must not change.
        clustered, system = instance
        default = race(clustered, system, self.build_arms(), rng=21)
        with ProcessPoolExecutor(max_workers=2) as pool:
            explicit = race(
                clustered, system, self.build_arms(), rng=21, executor=pool
            )
        assert explicit.winner == default.winner
        assert json.dumps(explicit.arms, sort_keys=True) == json.dumps(
            default.arms, sort_keys=True
        )
        assert np.array_equal(
            explicit.outcome.assignment.placement,
            default.outcome.assignment.placement,
        )

    def test_all_arms_failing_raises(self, instance):
        clustered, system = instance
        arms = [
            ArmSpec("boom_a", {}, _ExplodingMapper()),
            ArmSpec("boom_b", {}, _ExplodingMapper()),
        ]
        with pytest.raises(MappingError, match="killed or failed"):
            race(clustered, system, arms, rng=1)

    def test_one_failing_arm_is_an_arm_loss_only(self, instance):
        clustered, system = instance
        arms = [
            ArmSpec("critical", {}, get_mapper("critical")),
            ArmSpec("boom", {}, _ExplodingMapper()),
        ]
        result = race(clustered, system, arms, rng=1)
        assert result.winner == 0
        statuses = {a["mapper"]: a["status"] for a in result.arms}
        assert statuses == {"critical": "won", "boom": "failed"}

    def test_arm_seeds_stable_and_independent(self):
        first = arm_seeds(42, 3)
        assert arm_seeds(42, 3) == first
        assert len(set(first)) == 3
        assert arm_seeds(43, 3) != first


class TestPortfolioAdapter:
    def test_registered(self):
        assert "portfolio" in available_mappers()

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"objective": "latency"}, "unknown portfolio objective"),
            ({"kill_ratio": 0.5}, "kill_ratio"),
            ({"max_auto_arms": 1}, "max_auto_arms"),
            ({"arms": ["critical"]}, "at least two arms"),
            ({"arms": ["critical", "portfolio"]}, "cannot itself be"),
            ({"arms": "best"}, "must be 'auto' or a list"),
            ({"arms": {"name": "critical"}}, "must be 'auto' or a list"),
            (
                {"arms": [{"name": "critical", "cooling": 0.9}, "tabu"]},
                "optional 'params'",
            ),
            ({"arms": [("critical",), "tabu"]}, "pair"),
        ],
    )
    def test_validation_errors(self, kwargs, message):
        with pytest.raises(MappingError, match=message):
            get_mapper("portfolio", **kwargs)

    def test_outcome_carries_racing_diagnostics(self, instance):
        clustered, system = instance
        mapper = get_mapper(
            "portfolio", arms=["critical", "annealing"], objective="total_time"
        )
        outcome = mapper.map(clustered, system, rng=21)
        diag = outcome.portfolio
        assert diag["objective"] == "total_time"
        assert diag["kill_ratio"] == 1.5
        assert {a["mapper"] for a in diag["arms"]} == {"critical", "annealing"}
        statuses = [a["status"] for a in diag["arms"]]
        assert statuses.count("won") == 1
        for arm in diag["arms"]:
            if arm["status"] == "killed":
                assert arm["kill_iteration"] >= 1
        assert diag["winner"]["mapper"] == diag["arms"][diag["winner"]["arm"]][
            "mapper"
        ]
        assert outcome.extras["arms_total"] == 2.0
        assert (
            outcome.extras["arms_killed"]
            == sum(a["status"] == "killed" for a in diag["arms"]) * 1.0
        )

    def test_explicit_arms_cacheable_auto_not(self):
        assert getattr(
            get_mapper("portfolio", arms=["critical", "tabu"]),
            "cacheable",
            True,
        )
        assert get_mapper("portfolio").cacheable is False

    def test_auto_arms_fall_back_to_defaults(self, instance, fresh_default):
        # No store, no history: auto mode pads from DEFAULT_ARMS to the
        # two-arm minimum.
        clustered, system = instance
        outcome = get_mapper("portfolio").map(clustered, system, rng=4)
        arms = [a["mapper"] for a in outcome.portfolio["arms"]]
        assert arms == [name for name, _ in DEFAULT_ARMS[:2]]

    def test_scenario_rejects_auto_arms(self):
        with pytest.raises(ScenarioError, match="explicit 'arms' list"):
            Scenario(
                workload="fft",
                workload_params={"points_log2": 2},
                topology="hypercube:2",
                mapper="portfolio",
            )

    def test_scenario_accepts_explicit_arms(self):
        scenario = Scenario(
            workload="fft",
            workload_params={"points_log2": 2},
            topology="hypercube:2",
            mapper="portfolio",
            mapper_params={"arms": ["critical", "tabu"]},
        )
        assert scenario.mapper == "portfolio"


class TestRecommender:
    def test_family_of(self):
        assert family_of("hypercube:6") == "hypercube"
        assert family_of("fft") == "fft"
        assert family_of("layered_random-5000") == "layered_random"
        assert family_of("torus2d:4x4") == "torus2d"
        assert family_of("123") == "123"  # no identifier prefix: verbatim

    @staticmethod
    def records():
        def rec(mapper, total, bound, wall, workload="fft", topology="hypercube"):
            outcome = {
                "total_time": total,
                "lower_bound": bound,
                "wall_time": wall,
                "mapper": mapper,
            }
            meta = {
                "workload": workload,
                "topology": topology,
                "mapper": mapper,
                "params": {},
            }
            return (f"fp-{mapper}-{total}-{wall}", outcome, meta)

        return [
            rec("critical", 110, 100, 0.01),
            rec("critical", 120, 100, 0.02),
            rec("annealing", 105, 100, 2.0),
            rec("tabu", 140, 100, 0.5),
            rec("tabu", 100, 100, 0.5, workload="gnp"),  # other family
            ("fp-nometa", {"total_time": 1, "lower_bound": 1}, None),
        ]

    def test_mine_records_ranks_by_quality_then_cost(self):
        payload = mine_records(self.records(), "fft", "hypercube:3")
        assert payload["workload"] == "fft"
        assert payload["topology"] == "hypercube"
        assert payload["samples"] == 4  # the gnp and meta-less records skipped
        assert payload["recommendation"]["mapper"] == "annealing"
        assert payload["recommendation"]["samples"] == 1
        ranked = [payload["recommendation"]] + payload["alternatives"]
        assert [c["mapper"] for c in ranked] == ["annealing", "critical", "tabu"]
        critical = ranked[1]
        assert critical["mean_percent_of_bound"] == pytest.approx(115.0)

    def test_mine_records_no_evidence_is_none(self):
        assert mine_records(self.records(), "cholesky", "ring") is None
        assert mine_records([], "fft", "hypercube") is None

    def test_merge_payloads_sample_weighted(self):
        a = mine_records(self.records(), "fft", "hypercube")
        b = {
            "workload": "fft",
            "topology": "hypercube",
            "samples": 10,
            "recommendation": {
                "mapper": "critical",
                "params": {},
                "samples": 10,
                "mean_percent_of_bound": 101.0,
                "mean_wall_time": 0.01,
            },
            "alternatives": [],
        }
        merged = merge_payloads([a, None, b])
        assert merged["samples"] == 14
        # 10 samples at 101 pull critical's mean below annealing's 105.
        assert merged["recommendation"]["mapper"] == "critical"
        critical = merged["recommendation"]
        assert critical["samples"] == 12
        assert critical["mean_percent_of_bound"] == pytest.approx(
            (2 * 115.0 + 10 * 101.0) / 12
        )
        assert merge_payloads([None, None]) is None

    def test_arms_from_payload_dedupes_and_skips_portfolio(self):
        payload = {
            "recommendation": {"mapper": "portfolio", "params": {}},
            "alternatives": [
                {"mapper": "tabu", "params": {"iterations": 5}},
                {"mapper": "tabu", "params": {"iterations": 5}},
                {"mapper": "critical", "params": {}},
                {"mapper": "annealing", "params": {}},
            ],
        }
        assert arms_from_payload(payload, max_arms=2) == [
            ("tabu", {"iterations": 5}),
            ("critical", {}),
        ]


class TestServiceIntegration:
    def test_drain_joins_inflight_portfolio_arms(self):
        graph, system = layered_random_dag(num_tasks=64, rng=2), hypercube(3)
        clustering = RandomClusterer(num_clusters=system.num_nodes).cluster(
            graph, rng=2
        )
        service = MappingService(max_workers=2, cache_size=16)
        try:
            job = service.submit(
                graph,
                clustering,
                system,
                mapper="portfolio",
                rng=6,
                arms=["critical", "annealing"],
            )
            assert service.drain(timeout=120.0) == 0
            outcome = job.result(timeout=1.0)
            assert outcome.portfolio["arms"]
        finally:
            service.close()

    def test_queue_limit_zero_still_serves_cached_portfolio(self):
        graph, system = layered_random_dag(num_tasks=64, rng=2), hypercube(3)
        clustering = RandomClusterer(num_clusters=system.num_nodes).cluster(
            graph, rng=2
        )
        service = MappingService(max_workers=2, cache_size=16)
        try:
            job = service.submit(
                graph,
                clustering,
                system,
                mapper="portfolio",
                rng=6,
                arms=["critical", "annealing"],
            )
            first = job.result(timeout=120.0)
            service.drain(timeout=120.0)
            # Drain mode: no new work, cached answers still flow.
            service.queue_limit = 0
            cached = service.submit(
                graph,
                clustering,
                system,
                mapper="portfolio",
                rng=6,
                arms=["critical", "annealing"],
            )
            assert cached.cached is True
            assert np.array_equal(
                cached.result(timeout=1.0).assignment.placement,
                first.assignment.placement,
            )
            with pytest.raises(ServiceSaturatedError):
                service.submit(
                    graph,
                    clustering,
                    system,
                    mapper="portfolio",
                    rng=7,  # different fingerprint: real work, refused
                    arms=["critical", "annealing"],
                )
        finally:
            service.close()

    def test_recommend_end_to_end_via_real_solves(self, tmp_path):
        store = str(tmp_path / "history.jsonl")
        service = MappingService(max_workers=2, cache_size=16, store_path=store)
        try:
            assert service.recommend("fft", "hypercube") is None
            scenario = Scenario(
                workload="fft",
                workload_params={"points_log2": 3},
                topology="hypercube:2",
                mapper="critical",
                seed=5,
            )
            service.submit_scenario(scenario).result(timeout=120.0)
            payload = service.recommend("fft", "hypercube:2")
            assert payload is not None
            assert payload["recommendation"]["mapper"] == "critical"
            assert payload["samples"] == 1
        finally:
            service.close()
        # The mined default survives a restart from the durable store.
        reopened = MappingService(max_workers=2, cache_size=16, store_path=store)
        try:
            payload = reopened.recommend("fft", "hypercube")
            assert payload is not None
            assert payload["recommendation"]["mapper"] == "critical"
        finally:
            reopened.close()
