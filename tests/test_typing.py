"""The strict-typing baseline: mypy --strict over the typed islands.

``repro.api`` and ``repro.lint`` are the first strictly-typed islands
(see ``[tool.mypy]`` in pyproject.toml).  This test runs mypy exactly as
CI does, so a local ``pytest`` catches typing regressions before push.
Skipped when mypy is not installed (it is a dev extra, not a runtime
dependency).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_typed_islands_pass_strict_mypy():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"mypy failed:\n{proc.stdout}\n{proc.stderr}"


def test_py_typed_marker_ships_with_the_package():
    assert (REPO_ROOT / "src" / "repro" / "py.typed").is_file()
