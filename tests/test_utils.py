"""Unit tests for repro.utils."""

import numpy as np
import pytest

from repro.utils import (
    GraphError,
    MappingError,
    Stopwatch,
    as_rng,
    as_weight_matrix,
    check_permutation,
    check_square,
    pairs,
)


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seeds(self):
        a, b = as_rng(7), as_rng(7)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_rng(g) is g

    def test_numpy_integer_accepted(self):
        assert isinstance(as_rng(np.int64(3)), np.random.Generator)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            as_rng("seed")


class TestAsWeightMatrix:
    def test_from_nested_list(self):
        m = as_weight_matrix([[0, 1], [0, 0]])
        assert m.dtype == np.int64
        assert m[0, 1] == 1

    def test_from_dict_of_dicts(self):
        m = as_weight_matrix({0: {2: 5}}, n=3)
        assert m.shape == (3, 3)
        assert m[0, 2] == 5

    def test_dict_infers_size(self):
        m = as_weight_matrix({1: {3: 2}})
        assert m.shape == (4, 4)

    def test_negative_rejected(self):
        with pytest.raises(GraphError, match="non-negative"):
            as_weight_matrix([[0, -1], [0, 0]])

    def test_wrong_size_rejected(self):
        with pytest.raises(GraphError):
            as_weight_matrix([[0, 1], [0, 0]], n=3)

    def test_copies_input(self):
        src = np.zeros((2, 2), dtype=np.int64)
        m = as_weight_matrix(src)
        m[0, 1] = 9
        assert src[0, 1] == 0


class TestCheckers:
    def test_check_square(self):
        check_square(np.zeros((3, 3)))
        with pytest.raises(GraphError):
            check_square(np.zeros((2, 3)))
        with pytest.raises(GraphError):
            check_square(np.zeros(3))
        with pytest.raises(GraphError):
            check_square(np.zeros((2, 2)), n=3)

    def test_check_permutation_valid(self):
        arr = check_permutation([2, 0, 1], 3)
        assert arr.tolist() == [2, 0, 1]

    def test_check_permutation_invalid(self):
        with pytest.raises(MappingError):
            check_permutation([0, 0, 1], 3)
        with pytest.raises(MappingError):
            check_permutation([0, 1], 3)


class TestMisc:
    def test_stopwatch(self):
        with Stopwatch() as sw:
            sum(range(100))
        assert sw.elapsed >= 0.0

    def test_pairs(self):
        assert list(pairs([1, 2, 3])) == [(1, 2), (1, 3), (2, 3)]
        assert list(pairs([])) == []
        assert list(pairs([5])) == []
