"""Unit tests for repro.core.taskgraph."""

import numpy as np
import pytest

from repro.core import Edge, TaskGraph
from repro.utils import GraphError


class TestConstruction:
    def test_from_edge_triples(self):
        g = TaskGraph([1, 2], [(0, 1, 5)])
        assert g.num_tasks == 2
        assert g.weight(0, 1) == 5
        assert g.num_edges == 1

    def test_from_dense_matrix(self):
        mat = np.zeros((3, 3), dtype=int)
        mat[0, 1] = 2
        mat[1, 2] = 3
        g = TaskGraph([1, 1, 1], mat)
        assert g.weight(0, 1) == 2
        assert g.weight(1, 2) == 3

    def test_no_edges(self):
        g = TaskGraph([4, 5, 6])
        assert g.num_edges == 0
        assert g.total_work == 15

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([])

    def test_zero_size_rejected(self):
        with pytest.raises(GraphError, match="non-positive"):
            TaskGraph([1, 0], [(0, 1, 1)])

    def test_negative_size_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([1, -2])

    def test_self_loop_rejected(self):
        mat = np.zeros((2, 2), dtype=int)
        mat[1, 1] = 3
        with pytest.raises(GraphError, match="self-loop"):
            TaskGraph([1, 1], mat)

    def test_cycle_rejected(self):
        with pytest.raises(GraphError, match="cycle"):
            TaskGraph([1, 1, 1], [(0, 1, 1), (1, 2, 1), (2, 0, 1)])

    def test_two_cycle_rejected(self):
        with pytest.raises(GraphError, match="cycle"):
            TaskGraph([1, 1], [(0, 1, 1), (1, 0, 1)])

    def test_dangling_edge_rejected(self):
        with pytest.raises(GraphError, match="missing task"):
            TaskGraph([1, 1], [(0, 5, 1)])

    def test_zero_weight_edge_rejected(self):
        with pytest.raises(GraphError, match="positive weight"):
            TaskGraph([1, 1], [(0, 1, 0)])

    def test_matrix_must_be_square(self):
        with pytest.raises(GraphError):
            TaskGraph([1, 1], np.zeros((2, 3), dtype=int))

    def test_matrix_size_mismatch(self):
        with pytest.raises(GraphError):
            TaskGraph([1, 1, 1], np.zeros((2, 2), dtype=int))


class TestAccessors:
    def test_predecessors_successors(self, diamond_graph):
        assert diamond_graph.predecessors(3).tolist() == [1, 2]
        assert diamond_graph.successors(0).tolist() == [1, 2]
        assert diamond_graph.predecessors(0).size == 0
        assert diamond_graph.successors(3).size == 0

    def test_sources_sinks(self, diamond_graph):
        assert diamond_graph.sources().tolist() == [0]
        assert diamond_graph.sinks().tolist() == [3]

    def test_degree(self, diamond_graph):
        assert diamond_graph.degree(0) == 2
        assert diamond_graph.degree(3) == 2
        assert diamond_graph.degree(1) == 2

    def test_edges_iteration(self, diamond_graph):
        edges = list(diamond_graph.edges())
        assert Edge(0, 1, 1) in edges
        assert Edge(2, 3, 1) in edges
        assert len(edges) == 4

    def test_has_edge(self, diamond_graph):
        assert diamond_graph.has_edge(0, 1)
        assert not diamond_graph.has_edge(1, 0)
        assert not diamond_graph.has_edge(0, 3)

    def test_totals(self, diamond_graph):
        assert diamond_graph.total_work == 8
        assert diamond_graph.total_comm == 6

    def test_len(self, diamond_graph):
        assert len(diamond_graph) == 4

    def test_prob_edge_read_only(self, diamond_graph):
        with pytest.raises(ValueError):
            diamond_graph.prob_edge[0, 1] = 9

    def test_task_sizes_read_only(self, diamond_graph):
        with pytest.raises(ValueError):
            diamond_graph.task_sizes[0] = 9


class TestTopologicalOrder:
    def test_valid_order(self, diamond_graph):
        order = diamond_graph.topological_order.tolist()
        pos = {t: i for i, t in enumerate(order)}
        for e in diamond_graph.edges():
            assert pos[e.src] < pos[e.dst]

    def test_all_tasks_present(self, diamond_graph):
        assert sorted(diamond_graph.topological_order.tolist()) == [0, 1, 2, 3]


class TestDerived:
    def test_critical_path_chain(self, chain_graph):
        # 1 + 3 + 1 + 1 + 1 + 2 + 1 = 10
        assert chain_graph.critical_path_length() == 10

    def test_critical_path_diamond(self, diamond_graph):
        # 0(2) -1-> 1(3) -2-> 3(2) = 2+1+3+2+2 = 10
        assert diamond_graph.critical_path_length() == 10

    def test_critical_path_independent_tasks(self):
        g = TaskGraph([5, 9, 3])
        assert g.critical_path_length() == 9

    def test_connectivity(self, diamond_graph):
        assert diamond_graph.is_connected()
        assert not TaskGraph([1, 1]).is_connected()

    def test_relabeled_preserves_structure(self, diamond_graph):
        order = [3, 2, 1, 0]
        relabeled = diamond_graph.relabeled(order)
        assert relabeled.total_work == diamond_graph.total_work
        assert relabeled.total_comm == diamond_graph.total_comm
        assert relabeled.critical_path_length() == diamond_graph.critical_path_length()
        # old task 0 (size 2) is now task 3
        assert relabeled.task_sizes[3] == 2

    def test_relabeled_bad_order(self, diamond_graph):
        with pytest.raises(GraphError):
            diamond_graph.relabeled([0, 0, 1, 2])


class TestEqualityAndConversion:
    def test_equality(self):
        a = TaskGraph([1, 2], [(0, 1, 3)])
        b = TaskGraph([1, 2], [(0, 1, 3)])
        c = TaskGraph([1, 2], [(0, 1, 4)])
        assert a == b
        assert a != c

    def test_networkx_round_trip(self, diamond_graph):
        g = diamond_graph.to_networkx()
        back = TaskGraph.from_networkx(g)
        assert back == diamond_graph

    def test_networkx_bad_labels(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_node("a")
        with pytest.raises(GraphError):
            TaskGraph.from_networkx(g)

    def test_repr(self, diamond_graph):
        text = repr(diamond_graph)
        assert "tasks=4" in text and "edges=4" in text
