"""Tests for the repro.experiments package (runner, tables, ablations)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    default_ablation_systems,
    format_figure,
    format_table,
    run_baseline_comparison,
    run_exchange_ablation,
    run_experiment,
    run_fidelity_ablation,
    run_guidance_ablation,
    run_refinement_ablation,
    run_scaling_study,
    run_table,
    run_table1,
    run_table2,
    run_table3,
    run_worked_example,
    table1_systems,
    table2_systems,
    table3_systems,
)
from repro.topology import hypercube, mesh2d, ring

FAST = ExperimentConfig(min_tasks=30, max_tasks=60, random_samples=5)


class TestRunner:
    def test_single_experiment(self):
        row, result = run_experiment(1, hypercube(2), FAST, rng=0)
        assert row.num_processors == 4
        assert row.lower_bound == result.lower_bound
        assert row.our_total_time >= row.lower_bound
        assert row.ours_pct >= 100.0
        assert row.reached_lower_bound == result.is_provably_optimal

    def test_explicit_task_count(self):
        row, _ = run_experiment(1, ring(4), FAST, rng=0, num_tasks=40)
        assert row.num_tasks == 40

    def test_deterministic_by_seed(self):
        a, _ = run_experiment(1, hypercube(2), FAST, rng=42)
        b, _ = run_experiment(1, hypercube(2), FAST, rng=42)
        assert a.our_total_time == b.our_total_time
        assert a.random_mean_total_time == b.random_mean_total_time

    def test_run_table(self):
        rows = run_table([ring(4), mesh2d(2, 2)], FAST, rng=1)
        assert [r.index for r in rows] == [1, 2]
        assert rows[0].topology == "ring-4"

    def test_runner_takes_mapper_name(self):
        config = ExperimentConfig(
            min_tasks=30, max_tasks=60, random_samples=5, mapper="tabu",
            mapper_params={"iterations": 5},
        )
        row, outcome = run_experiment(1, hypercube(2), config, rng=0, num_tasks=30)
        assert outcome.mapper == "tabu"
        assert row.our_total_time == outcome.total_time
        assert row.our_total_time >= row.lower_bound

    def test_runner_unknown_mapper(self):
        from repro.api import UnknownMapperError

        config = ExperimentConfig(mapper="nope")
        with pytest.raises(UnknownMapperError):
            run_experiment(1, hypercube(2), config, rng=0, num_tasks=30)

    def test_refinement_knobs_reach_critical_mapper(self):
        config = ExperimentConfig(
            min_tasks=30, max_tasks=60, random_samples=5, refinement="none"
        )
        _, outcome = run_experiment(1, hypercube(2), config, rng=0, num_tasks=30)
        assert outcome.evaluations == 0  # no refinement trials ran


class TestTableSystems:
    def test_table1_all_hypercubes(self):
        for s in table1_systems():
            n = s.num_nodes
            assert n & (n - 1) == 0  # power of two
            assert 4 <= n <= 32

    def test_table2_all_meshes(self):
        for s in table2_systems():
            assert s.name.startswith("mesh-")
            assert 4 <= s.num_nodes <= 40

    def test_table3_random_sizes_in_range(self):
        for s in table3_systems(rng=0):
            assert 4 <= s.num_nodes <= 40

    def test_row_counts_match_paper(self):
        assert len(table1_systems()) == 10
        assert len(table2_systems()) == 11
        assert len(table3_systems(rng=0)) == 17


class TestTableRuns:
    """Smoke runs with reduced sizes; the benchmarks run the full tables."""

    def test_table1_small(self):
        rows = run_table1(rng=0, rows=3, config=FAST)
        assert len(rows) == 3
        text = format_table(rows, 1)
        assert "Table 1" in text
        fig = format_figure(rows, 25)
        assert "Fig. 25" in fig

    def test_table2_small(self):
        rows = run_table2(rng=0, rows=3, config=FAST)
        assert all(r.ours_pct >= 100 for r in rows)

    def test_table3_small(self):
        rows = run_table3(rng=0, rows=3, config=FAST)
        assert len(rows) == 3


class TestWorkedExample:
    def test_all_milestones(self):
        report = run_worked_example()
        assert report.ideal_matches_fig22
        assert report.lower_bound_is_14
        assert report.reached_lower_bound
        assert report.refinement_trials == 0
        assert report.all_milestones_pass

    def test_format(self):
        from repro.experiments import format_worked_example

        text = format_worked_example(run_worked_example())
        assert "ALL MILESTONES PASS             : True" in text
        assert "total time = 14" in text


SMALL_SYSTEMS = [hypercube(2), mesh2d(2, 2)]


class TestAblations:
    def test_refinement_ablation(self):
        rows = run_refinement_ablation(
            rng=0, systems=SMALL_SYSTEMS, instances_per_system=1
        )
        for row in rows:
            assert row.values["with_refinement"] <= row.values["initial_only"]
            assert row.values["with_refinement"] >= row.lower_bound

    def test_guidance_ablation(self):
        rows = run_guidance_ablation(
            rng=0, systems=SMALL_SYSTEMS, instances_per_system=1
        )
        assert {"critical_guided", "unguided"} <= set(rows[0].values)

    def test_exchange_ablation(self):
        rows = run_exchange_ablation(
            rng=0, systems=SMALL_SYSTEMS, instances_per_system=1
        )
        assert {"random_replacement", "pairwise_exchange"} <= set(rows[0].values)

    def test_fidelity_ablation_ordering(self):
        rows = run_fidelity_ablation(
            rng=0, systems=SMALL_SYSTEMS, instances_per_system=1
        )
        for row in rows:
            base = row.values["analytic_model"]
            assert row.values["serialized_cpus"] >= base
            assert row.values["link_contention"] >= base
            assert row.values["both"] >= base

    def test_baseline_comparison_keys(self):
        rows = run_baseline_comparison(
            rng=0, systems=[hypercube(2)], instances_per_system=1
        )
        keys = set(rows[0].values)
        assert "critical_edge (ours)" in keys
        assert "simulated_annealing" in keys
        assert all(v >= rows[0].lower_bound for v in rows[0].values.values())

    def test_default_systems(self):
        systems = default_ablation_systems(rng=0)
        assert len(systems) == 3

    def test_scaling_study(self):
        records = run_scaling_study(
            rng=0, task_counts=(30, 60), processor_dims=(2,)
        )
        assert len(records) == 2
        for rec in records:
            assert rec["seconds"] >= 0.0
            assert rec["normalized"] > 0.0
