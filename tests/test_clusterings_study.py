"""Tests for the clustering-impact experiment."""

from repro.experiments import (
    format_clustering_study,
    run_clustering_study,
)
from repro.topology import mesh2d
from repro.workloads import wavefront_dag


class TestClusteringStudy:
    def test_all_combinations_present(self):
        rows = run_clustering_study(
            rng=0, system=mesh2d(2, 2), workloads=[wavefront_dag(4, 4)]
        )
        assert len(rows) == 6  # six clusterers
        assert len({r.clusterer for r in rows}) == 6

    def test_rows_internally_consistent(self):
        rows = run_clustering_study(
            rng=0, system=mesh2d(2, 2), workloads=[wavefront_dag(4, 4)]
        )
        for r in rows:
            assert r.total_time >= r.lower_bound
            assert r.reached_lower_bound == (r.total_time == r.lower_bound)
            assert r.cut_weight >= 0

    def test_format(self):
        rows = run_clustering_study(
            rng=0, system=mesh2d(2, 2), workloads=[wavefront_dag(4, 4)]
        )
        text = format_clustering_study(rows)
        assert "Clustering impact" in text
        assert "edge_zero" in text

    def test_edge_zero_lowers_cut(self):
        rows = run_clustering_study(
            rng=1, system=mesh2d(2, 2), workloads=[wavefront_dag(5, 5)]
        )
        cuts = {r.clusterer: r.cut_weight for r in rows}
        assert cuts["edge_zero"] <= cuts["random"]
