"""Unit tests for the repro.baselines package."""

import numpy as np
import pytest

from repro.baselines import (
    all_assignment_total_times,
    anneal_mapping,
    average_random_mapping,
    bokhari_mapping,
    cardinality,
    communication_cost,
    enumerate_assignments,
    exhaustive_optimum,
    lee_mapping,
    phases_by_level,
    random_mapping,
)
from repro.core import (
    AbstractGraph,
    Assignment,
    ClusteredGraph,
    Clustering,
    TaskGraph,
    lower_bound,
    total_time,
)
from repro.topology import chain, complete, hypercube, ring
from repro.utils import MappingError
from tests.conftest import random_instance


class TestRandomMapping:
    def test_single_sample(self, diamond_clustered, ring4):
        assignment, t = random_mapping(diamond_clustered, ring4, rng=0)
        assert t == total_time(diamond_clustered, ring4, assignment)

    def test_average_stats_consistent(self, diamond_clustered, ring4):
        stats = average_random_mapping(diamond_clustered, ring4, samples=15, rng=0)
        assert stats.samples == 15
        assert stats.best_total_time <= stats.mean_total_time <= stats.worst_total_time
        assert (
            total_time(diamond_clustered, ring4, stats.best_assignment)
            == stats.best_total_time
        )

    def test_deterministic_by_seed(self, diamond_clustered, ring4):
        a = average_random_mapping(diamond_clustered, ring4, samples=5, rng=3)
        b = average_random_mapping(diamond_clustered, ring4, samples=5, rng=3)
        assert a.mean_total_time == b.mean_total_time

    def test_bad_samples(self, diamond_clustered, ring4):
        with pytest.raises(ValueError):
            average_random_mapping(diamond_clustered, ring4, samples=0)


class TestCardinality:
    def test_complete_system_maximal(self, diamond_clustered):
        ab = AbstractGraph(diamond_clustered)
        card = cardinality(ab, complete(4), Assignment.identity(4))
        assert card == ab.num_edges()  # every abstract edge on a system edge

    def test_chain_counts_adjacent_only(self, diamond_clustered):
        ab = AbstractGraph(diamond_clustered)
        # identity on chain 0-1-2-3: edges (0,1),(2,3) adjacent; (0,2),(1,3) not.
        card = cardinality(ab, chain(4), Assignment.identity(4))
        assert card == 2

    def test_weighted_variant(self, diamond_clustered):
        ab = AbstractGraph(diamond_clustered)
        w = cardinality(ab, chain(4), Assignment.identity(4), weighted=True)
        assert w == 1 + 1  # weights of (0,1) and (2,3)

    def test_bokhari_search_maximizes(self, medium_instance):
        clustered, system = medium_instance
        ab = AbstractGraph(clustered)
        result = bokhari_mapping(clustered, system, rng=0, restarts=2)
        # The hill climb must at least beat a fresh random assignment on average.
        rand_card = np.mean(
            [
                cardinality(ab, system, Assignment.random(8, rng=s))
                for s in range(20)
            ]
        )
        assert result.cardinality >= rand_card
        assert result.evaluations > 0


class TestLee:
    def test_phases_by_level_cover_all_edges(self, medium_instance):
        clustered, _ = medium_instance
        phases = phases_by_level(clustered.graph)
        counted = sum(len(p) for p in phases)
        assert counted == clustered.graph.num_edges

    def test_phases_by_level_order(self, diamond_graph):
        phases = phases_by_level(diamond_graph)
        assert phases[0] == [(0, 1), (0, 2)]
        assert set(phases[1]) == {(1, 3), (2, 3)}

    def test_cost_on_closure_is_sum_of_phase_maxima(self, diamond_clustered):
        cost = communication_cost(
            diamond_clustered, complete(4), Assignment.identity(4)
        )
        # phase 0 max(1, 2) + phase 1 max(2, 1) = 4, all distances 1.
        assert cost == 4

    def test_cost_scales_with_distance(self, diamond_clustered):
        near = communication_cost(diamond_clustered, complete(4), Assignment.identity(4))
        far = communication_cost(diamond_clustered, chain(4), Assignment.identity(4))
        assert far >= near

    def test_intra_cluster_edges_free(self, diamond_graph):
        cg = ClusteredGraph(diamond_graph, Clustering([0, 0, 1, 1]))
        cost = communication_cost(cg, chain(2), Assignment.identity(2))
        # Only (0,2) w2 and (1,3) w2 cross; both in different phases? No:
        # phases by level: level0 edges (0,1),(0,2) -> max(0, 2); level1
        # edges (1,3),(2,3) -> max(2, 0) = 2. Total 4.
        assert cost == 4

    def test_lee_search_minimizes(self, medium_instance):
        clustered, system = medium_instance
        result = lee_mapping(clustered, system, rng=0, restarts=2)
        rand_cost = np.mean(
            [
                communication_cost(clustered, system, Assignment.random(8, rng=s))
                for s in range(20)
            ]
        )
        assert result.cost <= rand_cost


class TestAnnealing:
    def test_respects_lower_bound_and_consistency(self):
        clustered, system = random_instance(0)
        bound = lower_bound(clustered)
        result = anneal_mapping(clustered, system, rng=0, lower_bound=bound)
        assert result.total_time >= bound
        assert result.total_time == total_time(clustered, system, result.assignment)

    def test_early_stop_at_bound(self):
        from repro.workloads import running_example_clustered, running_example_system

        clustered = running_example_clustered()
        system = running_example_system()
        bound = lower_bound(clustered)
        result = anneal_mapping(clustered, system, rng=0, lower_bound=bound)
        assert result.reached_lower_bound
        assert result.total_time == bound

    def test_quench_only_improves(self):
        clustered, system = random_instance(1)
        start = Assignment.random(system.num_nodes, rng=5)
        start_time = total_time(clustered, system, start)
        result = anneal_mapping(
            clustered, system, rng=1, initial=start, quench=True
        )
        assert result.total_time <= start_time

    def test_beats_random_mean_usually(self):
        wins = 0
        for seed in range(6):
            clustered, system = random_instance(seed)
            ann = anneal_mapping(clustered, system, rng=seed)
            stats = average_random_mapping(clustered, system, samples=10, rng=seed)
            wins += ann.total_time <= stats.mean_total_time
        assert wins >= 5

    def test_single_node_system(self):
        g = TaskGraph([1, 2], [(0, 1, 1)])
        cg = ClusteredGraph(g, Clustering([0, 0]))
        from repro.topology import SystemGraph

        system = SystemGraph(np.zeros((1, 1), dtype=int))
        result = anneal_mapping(cg, system, rng=0)
        assert result.total_time == 3


class TestExhaustive:
    def test_enumerates_factorial(self):
        assert sum(1 for _ in enumerate_assignments(4)) == 24

    def test_vectorized_matches_scalar(self, diamond_clustered, ring4):
        perms, times = all_assignment_total_times(diamond_clustered, ring4)
        assert perms.shape == (24, 4)
        for k in range(24):
            assert times[k] == total_time(
                diamond_clustered, ring4, Assignment(perms[k])
            )

    def test_optimum_certified(self, diamond_clustered, ring4):
        result = exhaustive_optimum(diamond_clustered, ring4)
        assert result.evaluated == 24
        assert result.total_time == total_time(
            diamond_clustered, ring4, result.assignment
        )
        _, times = all_assignment_total_times(diamond_clustered, ring4)
        assert result.total_time == times.min()
        assert result.optima_count == int((times == times.min()).sum())

    def test_heuristic_never_beats_exhaustive(self):
        from repro.core import CriticalEdgeMapper

        for seed in range(4):
            clustered, system = random_instance(seed, num_tasks=20, system=ring(6))
            best = exhaustive_optimum(clustered, system)
            ours = CriticalEdgeMapper(rng=seed).map(clustered, system)
            assert ours.total_time >= best.total_time

    def test_size_limit(self):
        clustered, system = random_instance(0, num_tasks=40, system=hypercube(4))
        with pytest.raises(MappingError, match="refused"):
            exhaustive_optimum(clustered, system)
