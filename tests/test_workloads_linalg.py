"""Unit tests for repro.workloads.linalg."""

import pytest

from repro.utils import GraphError
from repro.workloads import cholesky_dag, gaussian_elimination_dag, wavefront_dag


class TestGaussianElimination:
    def test_task_count(self):
        # For n: sum_{k=0}^{n-2} (1 pivot + (n-1-k) updates)
        n = 5
        g = gaussian_elimination_dag(n)
        expected = sum(1 + (n - 1 - k) for k in range(n - 1))
        assert g.num_tasks == expected

    def test_is_connected_dag(self):
        g = gaussian_elimination_dag(6)
        assert g.is_connected()

    def test_single_entry_task(self):
        """Only the first pivot has no predecessors."""
        g = gaussian_elimination_dag(5)
        assert g.sources().size == 1

    def test_pivot_costs_decrease(self):
        g = gaussian_elimination_dag(6, flop_cost=1)
        # First task is P_0 with cost (n-1); last pivot costs 1.
        assert g.task_sizes[0] == 5

    def test_critical_path_grows_with_n(self):
        assert (
            gaussian_elimination_dag(8).critical_path_length()
            > gaussian_elimination_dag(4).critical_path_length()
        )

    def test_cost_scaling(self):
        cheap = gaussian_elimination_dag(5, flop_cost=1, word_cost=1)
        costly = gaussian_elimination_dag(5, flop_cost=3, word_cost=2)
        assert costly.total_work == 3 * cheap.total_work
        assert costly.total_comm == 2 * cheap.total_comm

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            gaussian_elimination_dag(1)


class TestCholesky:
    @pytest.mark.parametrize("t", [1, 2, 3, 4])
    def test_task_count(self, t):
        # POTRF: t, TRSM: t(t-1)/2, SYRK: t(t-1)/2, GEMM: sum C(i,2)-ish
        g = cholesky_dag(t)
        potrf = t
        trsm = t * (t - 1) // 2
        syrk = t * (t - 1) // 2
        gemm = sum(
            max(0, i - k - 1) for k in range(t) for i in range(k + 1, t)
        )
        assert g.num_tasks == potrf + trsm + syrk + gemm

    def test_single_tile_is_one_task(self):
        assert cholesky_dag(1).num_tasks == 1

    def test_valid_dag_and_connected(self):
        g = cholesky_dag(4)
        assert g.is_connected()

    def test_bad_tiles(self):
        with pytest.raises(GraphError):
            cholesky_dag(0)


class TestWavefront:
    def test_task_count_and_edges(self):
        g = wavefront_dag(3, 4)
        assert g.num_tasks == 12
        # edges: (rows-1)*cols down + rows*(cols-1) right
        assert g.num_edges == 2 * 4 + 3 * 3

    def test_corner_dependencies(self):
        g = wavefront_dag(3, 3)
        assert g.sources().tolist() == [0]
        assert g.sinks().tolist() == [8]

    def test_critical_path(self):
        # Path length rows+cols-1 cells, each size 2, comm 1 between.
        g = wavefront_dag(3, 3, task_size=2, comm=1)
        assert g.critical_path_length() == 5 * 2 + 4 * 1

    def test_bad_args(self):
        with pytest.raises(GraphError):
            wavefront_dag(0, 3)
        with pytest.raises(GraphError):
            wavefront_dag(2, 2, task_size=0)
