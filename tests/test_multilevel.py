"""Multilevel coarsen–map–refine mapper (``repro.core.multilevel``).

Locks down the coarsening invariants (valid projection maps, work and
communication conservation across contraction levels), the projection's
bijection guarantee at every level, the ``max_levels=1`` bit-identity
contract with the plain sub-mapper, the adapter's MapOutcome contract,
nested sub-mapper parameters reaching the service fingerprint, and the
registry's near-miss suggestions.
"""

import pickle

import numpy as np
import pytest

from repro.api import (
    UnknownMapperError,
    available_mappers,
    get_mapper,
    solve_instance,
)
from repro.api.scenario import Scenario
from repro.clustering import RandomClusterer
from repro.core import (
    Assignment,
    ClusteredGraph,
    build_hierarchy,
    evaluate_assignment,
    verify_schedule,
)
from repro.core.multilevel import (
    abstract_taskgraph,
    contract_graph,
    heavy_edge_matching,
    match_processors,
    project_assignment,
    refine_comm_volume,
)
from repro.service.fingerprint import instance_fingerprint
from repro.topology import hypercube, mesh2d
from repro.utils import MappingError
from repro.workloads import layered_random_dag


def make_instance(num_tasks=120, num_clusters=16, rng=3, system=None):
    graph = layered_random_dag(num_tasks=num_tasks, rng=rng)
    clustering = RandomClusterer(num_clusters=num_clusters).cluster(graph, rng=rng)
    return ClusteredGraph(graph, clustering), system or hypercube(4)


@pytest.fixture(scope="module")
def instance():
    return make_instance()


class TestAbstractTaskGraph:
    def test_conserves_communication(self, instance):
        clustered, _ = instance
        level0 = abstract_taskgraph(clustered)
        assert level0.total_comm == clustered.cut_weight()

    def test_node_sizes_are_cluster_loads(self, instance):
        clustered, _ = instance
        level0 = abstract_taskgraph(clustered)
        expected = clustered.clustering.load(clustered.graph)
        assert np.array_equal(level0.task_sizes, expected)
        assert level0.total_work == clustered.graph.total_work

    def test_is_a_dag_with_low_to_high_edges(self, instance):
        clustered, _ = instance
        level0 = abstract_taskgraph(clustered)
        # Edges only run low id -> high id, so the matrix is strictly
        # upper triangular (TaskGraph construction already rejects cycles).
        assert not np.tril(level0.prob_edge).any()


class TestHierarchy:
    def test_sizes_shrink_and_respect_floor(self, instance):
        clustered, system = instance
        h = build_hierarchy(clustered, system, min_coarse_tasks=2)
        sizes = h.sizes()
        assert sizes[0] == clustered.num_clusters
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        assert all(s >= 2 for s in sizes)

    def test_every_level_keeps_na_equal_ns(self, instance):
        clustered, system = instance
        h = build_hierarchy(clustered, system, min_coarse_tasks=2)
        for level in h.levels:
            assert level.graph.num_tasks == level.system.num_nodes

    def test_comm_volume_conserved_across_contraction(self, instance):
        clustered, system = instance
        h = build_hierarchy(clustered, system, min_coarse_tasks=2)
        assert h.num_levels > 2
        for fine, coarse in zip(h.levels, h.levels[1:]):
            assert (
                coarse.graph.total_comm + fine.absorbed == fine.graph.total_comm
            )
        total_absorbed = sum(level.absorbed for level in h.levels)
        assert (
            h.coarsest.graph.total_comm + total_absorbed
            == h.levels[0].graph.total_comm
        )

    def test_work_conserved_across_contraction(self, instance):
        clustered, system = instance
        h = build_hierarchy(clustered, system, min_coarse_tasks=2)
        for level in h.levels:
            assert level.graph.total_work == clustered.graph.total_work

    def test_projection_maps_are_dense_surjections(self, instance):
        clustered, system = instance
        h = build_hierarchy(clustered, system, min_coarse_tasks=2)
        for fine, coarse in zip(h.levels, h.levels[1:]):
            for mapping in (fine.node_map, fine.proc_map):
                assert mapping.size == fine.graph.num_tasks
                assert set(mapping.tolist()) == set(
                    range(coarse.graph.num_tasks)
                )
        assert h.coarsest.node_map is None
        assert h.coarsest.proc_map is None

    def test_max_levels_one_disables_coarsening(self, instance):
        clustered, system = instance
        h = build_hierarchy(clustered, system, max_levels=1)
        assert h.num_levels == 1
        assert h.coarsest.graph.num_tasks == clustered.num_clusters

    def test_bad_arguments_rejected(self, instance):
        clustered, system = instance
        with pytest.raises(MappingError, match="max_levels"):
            build_hierarchy(clustered, system, max_levels=0)
        with pytest.raises(MappingError, match="min_coarse_tasks"):
            build_hierarchy(clustered, system, min_coarse_tasks=0)

    def test_matching_is_disjoint_and_bounded(self, instance):
        clustered, _ = instance
        level0 = abstract_taskgraph(clustered)
        pairs = heavy_edge_matching(level0, max_merges=5)
        assert len(pairs) <= 5
        touched = [node for pair in pairs for node in pair]
        assert len(touched) == len(set(touched))

    def test_processor_matching_validates_budget(self):
        system = mesh2d(2, 3)
        with pytest.raises(MappingError, match="merge"):
            match_processors(system, 4)
        pairs = match_processors(system, 3)
        assert len(pairs) == 3

    def test_weighted_links_survive_contraction(self):
        from repro.core.multilevel import contract_system
        from repro.topology.base import SystemGraph

        adj = np.zeros((4, 4), dtype=np.int64)
        weights = np.zeros((4, 4), dtype=np.int64)
        for u, v, w in [(0, 1, 5), (1, 2, 2), (2, 3, 7), (3, 0, 3)]:
            adj[u, v] = adj[v, u] = 1
            weights[u, v] = weights[v, u] = w
        system = SystemGraph(adj, name="ring4", link_weights=weights)
        coarse, proc_map = contract_system(system, [(0, 1), (2, 3)])
        assert coarse.is_weighted
        # The two coarse nodes are linked by both the 1-2 (cost 2) and
        # 3-0 (cost 3) fine links; the cheapest member link survives.
        assert coarse.link_weight(0, 1) == 2

    def test_unweighted_contraction_stays_unweighted(self):
        from repro.core.multilevel import contract_system

        coarse, _ = contract_system(hypercube(3), [(0, 1), (2, 3)])
        assert not coarse.is_weighted


class TestProjection:
    def test_projected_assignments_are_valid_at_every_level(self, instance):
        clustered, system = instance
        h = build_hierarchy(clustered, system, min_coarse_tasks=2)
        assignment = Assignment.random(h.coarsest.graph.num_tasks, rng=9)
        for level in reversed(h.levels[:-1]):
            assignment = project_assignment(level, assignment)
            # Assignment construction enforces the bijection; make the
            # invariant explicit anyway.
            assert np.array_equal(
                np.sort(assignment.placement), np.arange(level.graph.num_tasks)
            )
        assert assignment.size == clustered.num_clusters

    def test_final_mapping_passes_the_independent_oracle(self, instance):
        clustered, system = instance
        outcome = solve_instance(
            clustered, system, mapper="multilevel", rng=5, min_coarse_tasks=2
        )
        schedule = evaluate_assignment(clustered, system, outcome.assignment)
        verify_schedule(schedule)
        assert schedule.total_time == outcome.total_time
        assert schedule.communication_volume() == outcome.extras["comm_volume"]

    def test_refinement_never_increases_comm_volume(self, instance):
        clustered, system = instance
        level0 = abstract_taskgraph(clustered)
        start = Assignment.random(clustered.num_clusters, rng=17)
        _, before, _, _ = refine_comm_volume(level0, system, start, passes=0)
        refined, after, probes, swaps = refine_comm_volume(
            level0, system, start, passes=4
        )
        assert after <= before
        assert probes >= swaps
        # The level-0 abstract volume is exact for the original instance.
        schedule = evaluate_assignment(clustered, system, refined)
        assert schedule.communication_volume() == after

    def test_comm_volume_delta_matches_delta_evaluator(self, instance):
        """CommVolumeDelta must track DeltaEvaluator's comm_volume
        aggregate exactly over random committed swap sequences."""
        from repro.core import CommVolumeDelta, DeltaEvaluator
        from repro.core.multilevel import identity_clustering

        clustered, system = instance
        level0 = abstract_taskgraph(clustered)
        n = level0.num_tasks
        start = Assignment.random(n, rng=23)
        sym = level0.prob_edge + level0.prob_edge.T
        light = CommVolumeDelta(sym, system, start)
        full = DeltaEvaluator(
            ClusteredGraph(level0, identity_clustering(n)), system, start
        )
        assert light.volume == full.comm_volume
        gen = np.random.default_rng(23)
        for _ in range(40):
            a, b = (int(x) for x in gen.choice(n, size=2, replace=False))
            assert light.delta_swap(a, b) == full.delta_comm_volume(a, b)
            light.swap(a, b)
            full.swap(a, b)
            assert light.volume == full.comm_volume
        assert light.assignment == full.assignment

    def test_contract_graph_records_absorbed_weight(self, instance):
        clustered, _ = instance
        level0 = abstract_taskgraph(clustered)
        pairs = heavy_edge_matching(level0, max_merges=level0.num_tasks // 2)
        coarse, node_map, absorbed = contract_graph(level0, pairs)
        assert coarse.total_comm + absorbed == level0.total_comm
        assert node_map.size == level0.num_tasks

    def test_project_requires_matching_sizes(self, instance):
        clustered, system = instance
        h = build_hierarchy(clustered, system, min_coarse_tasks=2)
        with pytest.raises(MappingError, match="coarsest"):
            project_assignment(h.coarsest, Assignment.identity(2))
        wrong = Assignment.identity(h.levels[0].graph.num_tasks)
        with pytest.raises(MappingError, match="coarse assignment"):
            project_assignment(h.levels[0], wrong)


class TestBitIdentity:
    """``multilevel(initial=X, max_levels=1)`` must equal plain ``X``."""

    @pytest.mark.parametrize("sub", ["critical", "tabu", "annealing"])
    def test_identical_to_sub_mapper(self, instance, sub):
        clustered, system = instance
        plain = solve_instance(clustered, system, mapper=sub, rng=42)
        wrapped = solve_instance(
            clustered, system, mapper="multilevel", rng=42, initial=sub, max_levels=1
        )
        assert wrapped.assignment == plain.assignment
        assert wrapped.total_time == plain.total_time
        assert wrapped.evaluations == plain.evaluations
        assert wrapped.reached_lower_bound == plain.reached_lower_bound
        assert wrapped.mapper == "multilevel"
        assert wrapped.extras["levels"] == 1.0

    def test_small_graph_skips_coarsening(self):
        clustered, system = make_instance(num_tasks=24, num_clusters=4, system=hypercube(2))
        outcome = solve_instance(clustered, system, mapper="multilevel", rng=1)
        # 4 clusters <= min_coarse_tasks=8: the hierarchy collapses and
        # the default critical sub-mapper solves the original instance.
        assert outcome.extras["levels"] == 1.0
        plain = solve_instance(clustered, system, mapper="critical", rng=1)
        assert outcome.assignment == plain.assignment


class TestAdapter:
    def test_registered(self):
        assert "multilevel" in available_mappers()

    def test_params_reach_the_factory(self):
        mapper = get_mapper(
            "multilevel",
            initial="annealing",
            initial_params={"cooling": 0.9},
            max_levels=3,
            min_coarse_tasks=4,
            refine_passes=2,
        )
        assert mapper.initial == "annealing"
        assert mapper.initial_params == {"cooling": 0.9}
        assert mapper.max_levels == 3
        assert mapper.min_coarse_tasks == 4
        assert mapper.refine_passes == 2

    def test_invalid_params_fail_fast(self):
        with pytest.raises(MappingError, match="max_levels"):
            get_mapper("multilevel", max_levels=0)
        with pytest.raises(MappingError, match="min_coarse_tasks"):
            get_mapper("multilevel", min_coarse_tasks=0)
        with pytest.raises(MappingError, match="refine_passes"):
            get_mapper("multilevel", refine_passes=-1)
        with pytest.raises(UnknownMapperError):
            get_mapper("multilevel", initial="no_such_mapper")
        with pytest.raises(TypeError):
            get_mapper("multilevel", initial="tabu", initial_params={"bogus": 1})

    def test_picklable(self):
        mapper = get_mapper("multilevel", initial="tabu", min_coarse_tasks=4)
        clone = pickle.loads(pickle.dumps(mapper))
        assert clone.initial == "tabu"
        assert clone.min_coarse_tasks == 4

    def test_deterministic_under_fixed_seed(self, instance):
        clustered, system = instance
        a = solve_instance(
            clustered, system, mapper="multilevel", rng=7, min_coarse_tasks=4
        )
        b = solve_instance(
            clustered, system, mapper="multilevel", rng=7, min_coarse_tasks=4
        )
        assert a.assignment == b.assignment
        assert a.total_time == b.total_time
        assert a.evaluations == b.evaluations

    def test_refine_passes_zero_is_projection_only(self, instance):
        clustered, system = instance
        outcome = solve_instance(
            clustered,
            system,
            mapper="multilevel",
            rng=3,
            min_coarse_tasks=4,
            refine_passes=0,
        )
        assert outcome.extras["refine_swaps"] == 0.0
        assert outcome.extras["levels"] > 1.0
        schedule = evaluate_assignment(clustered, system, outcome.assignment)
        verify_schedule(schedule)

    def test_runs_through_scenarios(self):
        scenario = Scenario(
            workload="layered_random",
            workload_params={"num_tasks": 32},
            topology="hypercube:2",
            mapper="multilevel",
            mapper_params={"min_coarse_tasks": 2, "initial": "critical"},
            seed=4,
        )
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt == scenario
        from repro.api.sweep import run_scenario_once

        outcome = run_scenario_once(scenario, 0)
        assert outcome.mapper == "multilevel"
        assert outcome.total_time >= outcome.lower_bound


class TestFingerprint:
    """Nested sub-mapper parameters must reach the cache key."""

    def test_nested_initial_params_change_the_fingerprint(self, instance):
        clustered, system = instance

        def fp(**params):
            return instance_fingerprint(
                clustered, system, "multilevel", params, seed=1
            )

        base = fp(initial="annealing", initial_params={"cooling": 0.9})
        same = fp(initial="annealing", initial_params={"cooling": 0.9})
        assert base == same
        assert base != fp(initial="annealing", initial_params={"cooling": 0.8})
        assert base != fp(initial="tabu", initial_params={"cooling": 0.9})
        assert base != fp(initial="annealing")

    def test_cached_repeat_is_bit_identical(self, instance):
        clustered, system = instance
        kwargs = dict(
            mapper="multilevel", rng=11, initial="tabu", min_coarse_tasks=4
        )
        first = solve_instance(clustered, system, **kwargs)
        second = solve_instance(clustered, system, **kwargs)
        assert second is first  # served from the service cache


class TestNearMissSuggestions:
    def test_close_name_gets_a_suggestion(self):
        with pytest.raises(UnknownMapperError, match="did you mean 'multilevel'"):
            get_mapper("multilevl")

    def test_typo_of_critical(self):
        with pytest.raises(UnknownMapperError, match="did you mean 'critical'"):
            get_mapper("critcal")

    def test_distant_name_lists_everything(self):
        with pytest.raises(UnknownMapperError, match="available:"):
            get_mapper("zzzzqqqq")

    def test_topology_spec_suggests_too(self):
        from repro.api import UnknownComponentError, parse_topology_spec

        with pytest.raises(UnknownComponentError, match="did you mean 'hypercube'"):
            parse_topology_spec("hypercub:3")

    def test_scenario_axis_suggests_too(self):
        from repro.api.scenario import ScenarioError

        with pytest.raises(ScenarioError, match="did you mean 'multilevel'"):
            Scenario(
                workload="layered_random",
                topology="hypercube:2",
                mapper="multilevell",
            )
