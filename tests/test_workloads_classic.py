"""Unit tests for repro.workloads.classic."""

import pytest

from repro.utils import GraphError
from repro.workloads import (
    divide_conquer_dag,
    fft_dag,
    fork_join_dag,
    map_reduce_dag,
    pipeline_dag,
    stencil_sweep_dag,
)


class TestFft:
    def test_structure(self):
        g = fft_dag(3)  # 8 points, 4 stages of 8
        assert g.num_tasks == 4 * 8
        assert g.num_edges == 3 * 8 * 2

    def test_sources_are_first_stage(self):
        g = fft_dag(2)
        assert g.sources().tolist() == [0, 1, 2, 3]

    def test_butterfly_partners(self):
        g = fft_dag(2)  # stage 0 exchanges bit 0
        assert g.has_edge(0, 4)  # straight
        assert g.has_edge(0, 5)  # exchange 0^1

    def test_bad_args(self):
        with pytest.raises(GraphError):
            fft_dag(0)


class TestForkJoin:
    def test_task_count(self):
        g = fork_join_dag(width=4, stages=2)
        assert g.num_tasks == 1 + (4 + 1) * 2

    def test_source_sink(self):
        g = fork_join_dag(width=3, stages=2)
        assert g.sources().size == 1
        assert g.sinks().size == 1

    def test_critical_path(self):
        g = fork_join_dag(width=5, stages=1, task_size=3, comm=2)
        # source(1) + comm(2) + worker(3) + comm(2) + join(1)
        assert g.critical_path_length() == 9

    def test_bad_args(self):
        with pytest.raises(GraphError):
            fork_join_dag(0)


class TestDivideConquer:
    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_task_count(self, levels):
        g = divide_conquer_dag(levels)
        assert g.num_tasks == 3 * 2**levels - 2

    def test_single_source_sink(self):
        g = divide_conquer_dag(3)
        assert g.sources().size == 1
        assert g.sinks().size == 1

    def test_bad_args(self):
        with pytest.raises(GraphError):
            divide_conquer_dag(0)


class TestPipeline:
    def test_structure(self):
        g = pipeline_dag(stages=3, items=4)
        assert g.num_tasks == 12
        # dataflow: (stages-1)*items, occupancy: stages*(items-1)
        assert g.num_edges == 2 * 4 + 3 * 3

    def test_wavefront_equivalence(self):
        """A pipeline DAG is a wavefront with (stages x items) cells."""
        from repro.workloads import wavefront_dag

        p = pipeline_dag(stages=3, items=4, task_size=2, comm=1)
        w = wavefront_dag(3, 4, task_size=2, comm=1)
        assert p.num_edges == w.num_edges
        assert p.critical_path_length() == w.critical_path_length()

    def test_bad_args(self):
        with pytest.raises(GraphError):
            pipeline_dag(0, 3)


class TestMapReduce:
    def test_structure(self):
        g = map_reduce_dag(mappers=3, reducers=2)
        assert g.num_tasks == 1 + 3 + 2 + 1
        assert g.num_edges == 3 + 3 * 2 + 2

    def test_shuffle_is_complete_bipartite(self):
        g = map_reduce_dag(mappers=2, reducers=3)
        for m in range(2):
            for r in range(3):
                assert g.has_edge(1 + m, 1 + 2 + r)

    def test_bad_args(self):
        with pytest.raises(GraphError):
            map_reduce_dag(0, 1)


class TestStencil:
    def test_structure(self):
        g = stencil_sweep_dag(grid=3, sweeps=2)
        assert g.num_tasks == 2 * 9
        # 9 self + border-clipped neighbors between the two sweeps.
        assert g.num_edges == 9 + 2 * (2 * 3 * 2)  # 9 self + 24 neighbor edges

    def test_single_sweep_no_edges(self):
        g = stencil_sweep_dag(grid=3, sweeps=1)
        assert g.num_edges == 0

    def test_bad_args(self):
        with pytest.raises(GraphError):
            stencil_sweep_dag(0, 1)
