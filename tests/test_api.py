"""Conformance suite for the unified mapper API (``repro.api``).

Every registered mapper must satisfy the same contract on the same
fixture instance: a valid :class:`MapOutcome` whose assignment passes the
independent schedule oracle, total time at or above the ideal lower
bound, and bit-identical results under a fixed seed.  Registry error
paths (duplicate registration, unknown names) and the batch engine's
serial/parallel equivalence are covered here too.
"""

import pytest

import repro
from repro.api import (
    DuplicateMapperError,
    MapOutcome,
    ProblemInstance,
    UnknownMapperError,
    available_mappers,
    compare,
    derive_seed,
    get_mapper,
    params_tag,
    register_mapper,
    solve,
    solve_instance,
    solve_many,
)
from repro.clustering import RandomClusterer
from repro.core import (
    Assignment,
    ClusteredGraph,
    evaluate_assignment,
    verify_schedule,
)
from repro.topology import hypercube, ring
from repro.utils import MappingError
from repro.workloads import layered_random_dag

ALL_MAPPERS = available_mappers()


@pytest.fixture(scope="module")
def small_instance():
    """A seeded 24-task instance on a 2-cube, shared by the conformance runs."""
    graph = layered_random_dag(num_tasks=24, rng=11)
    clustering = RandomClusterer(num_clusters=4).cluster(graph, rng=11)
    return ClusteredGraph(graph, clustering), hypercube(2)


class TestRegistry:
    def test_all_eight_mappers_registered(self):
        assert set(ALL_MAPPERS) >= {
            "critical",
            "random",
            "bokhari",
            "lee",
            "annealing",
            "quenching",
            "genetic",
            "tabu",
        }

    def test_get_mapper_sets_name(self):
        for name in ALL_MAPPERS:
            assert get_mapper(name).name == name

    def test_unknown_name(self):
        with pytest.raises(UnknownMapperError, match="critical"):
            get_mapper("does_not_exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DuplicateMapperError, match="tabu"):

            @register_mapper("tabu")
            class Impostor:
                pass

        assert get_mapper("tabu").__class__.__name__ == "TabuAdapter"

    def test_bad_name_rejected(self):
        with pytest.raises(MappingError):
            register_mapper("Not A Name")

    def test_params_reach_the_factory(self):
        mapper = get_mapper("random", samples=3)
        assert mapper.samples == 3
        with pytest.raises(TypeError):
            get_mapper("random", no_such_param=1)


class TestConformance:
    """The shared MapOutcome invariants, one run per registered mapper."""

    @pytest.mark.parametrize("name", ALL_MAPPERS)
    def test_outcome_invariants(self, small_instance, name):
        clustered, system = small_instance
        outcome = solve_instance(clustered, system, mapper=name, rng=5)
        assert isinstance(outcome, MapOutcome)
        assert outcome.mapper == name
        assert outcome.total_time >= outcome.lower_bound
        assert outcome.evaluations >= 0
        assert outcome.wall_time >= 0.0
        # The assignment must be a real permutation producing a schedule
        # the independent oracle accepts, with the reported makespan.
        assert isinstance(outcome.assignment, Assignment)
        schedule = evaluate_assignment(clustered, system, outcome.assignment)
        verify_schedule(schedule)
        assert schedule.total_time == outcome.total_time
        if outcome.reached_lower_bound:
            assert outcome.total_time == outcome.lower_bound

    @pytest.mark.parametrize("name", ALL_MAPPERS)
    def test_deterministic_under_fixed_seed(self, small_instance, name):
        clustered, system = small_instance
        a = solve_instance(clustered, system, mapper=name, rng=42)
        b = solve_instance(clustered, system, mapper=name, rng=42)
        assert a.assignment == b.assignment
        assert a.total_time == b.total_time
        assert a.evaluations == b.evaluations


class TestFacade:
    def test_solve_binds_clustering(self, small_instance):
        clustered, system = small_instance
        outcome = solve(
            clustered.graph, clustered.clustering, system, mapper="critical", rng=1
        )
        assert outcome.total_time >= outcome.lower_bound

    def test_solve_accepts_mapper_instance(self, small_instance):
        clustered, system = small_instance
        mapper = get_mapper("tabu", iterations=5)
        outcome = solve_instance(clustered, system, mapper=mapper, rng=1)
        assert outcome.mapper == "tabu"

    def test_params_with_instance_rejected(self, small_instance):
        clustered, system = small_instance
        with pytest.raises(TypeError, match="name"):
            solve_instance(
                clustered, system, mapper=get_mapper("tabu"), rng=1, iterations=5
            )

    def test_package_root_reexports(self):
        assert repro.solve is solve
        assert repro.available_mappers is available_mappers
        assert repro.MapOutcome is MapOutcome

    def test_format_comparison_rejects_empty(self):
        from repro.api import format_comparison

        with pytest.raises(ValueError, match="at least one"):
            format_comparison([])

    def test_format_comparison_bound_survives_sorting(self, small_instance):
        """The title bound comes from the instance, not the fastest mapper."""
        from repro.api import format_comparison

        clustered, system = small_instance
        outcomes = compare(clustered, system, mappers=["tabu", "critical"], seed=2)
        table = format_comparison(outcomes)
        assert f"lower bound = {outcomes[0].lower_bound}" in table
        assert "lower bound = 0" not in table

    def test_outcome_rejects_impossible_report(self, small_instance):
        clustered, system = small_instance
        with pytest.raises(MappingError, match="below the lower bound"):
            MapOutcome(
                mapper="bogus",
                assignment=Assignment.identity(4),
                total_time=3,
                lower_bound=10,
                evaluations=0,
                reached_lower_bound=False,
                wall_time=0.0,
            )


def _instances(count=4, tasks=20):
    out = []
    for seed in range(count):
        graph = layered_random_dag(num_tasks=tasks, rng=seed)
        clustering = RandomClusterer(num_clusters=4).cluster(graph, rng=seed)
        out.append(
            ProblemInstance(ClusteredGraph(graph, clustering), ring(4), name=f"i{seed}")
        )
    return out


class _IdentityMapper:
    """Minimal custom Mapper (module-level so it pickles to workers)."""

    name = "identity"

    def map(self, clustered, system, rng=None):
        from repro.core import Assignment, evaluate_assignment, ideal_schedule

        assignment = Assignment.identity(system.num_nodes)
        schedule = evaluate_assignment(clustered, system, assignment)
        return MapOutcome(
            mapper=self.name,
            assignment=assignment,
            total_time=schedule.total_time,
            lower_bound=ideal_schedule(clustered).total_time,
            evaluations=1,
            reached_lower_bound=False,
            wall_time=0.0,
        )


class TestBatch:
    def test_custom_mapper_instance_parallel(self):
        # An unregistered mapper instance ships to the worker processes.
        outcomes = solve_many(
            _instances(3), mapper=_IdentityMapper(), seed=1, max_workers=2
        )
        assert [o.mapper for o in outcomes] == ["identity"] * 3

    def test_instance_with_params_rejected(self):
        with pytest.raises(TypeError, match="name"):
            solve_many(_instances(1), mapper=_IdentityMapper(), samples=3)

    def test_solve_many_serial(self):
        outcomes = solve_many(_instances(), mapper="critical", seed=9)
        assert len(outcomes) == 4
        assert all(o.total_time >= o.lower_bound for o in outcomes)

    @pytest.mark.parametrize("mapper", ["critical", "annealing"])
    def test_parallel_matches_serial(self, mapper):
        instances = _instances()
        serial = solve_many(instances, mapper=mapper, seed=9, max_workers=1)
        parallel = solve_many(instances, mapper=mapper, seed=9, max_workers=3)
        for a, b in zip(serial, parallel):
            assert a.assignment == b.assignment
            assert a.total_time == b.total_time
            assert a.evaluations == b.evaluations

    def test_accepts_bare_pairs(self):
        pairs = [(inst.clustered, inst.system) for inst in _instances(2)]
        outcomes = solve_many(pairs, mapper="random", seed=0, samples=5)
        assert [o.evaluations for o in outcomes] == [5, 5]

    def test_bad_workers(self):
        with pytest.raises(MappingError):
            solve_many(_instances(1), max_workers=0)

    def test_mismatched_instance_rejected(self):
        graph = layered_random_dag(num_tasks=12, rng=0)
        clustering = RandomClusterer(num_clusters=4).cluster(graph, rng=0)
        with pytest.raises(MappingError, match="clusters"):
            ProblemInstance(ClusteredGraph(graph, clustering), ring(5))

    def test_derived_seeds_differ(self):
        seeds = {derive_seed(0, i, m) for i in range(3) for m in ("tabu", "genetic")}
        assert len(seeds) == 6
        assert derive_seed(1, 2, "tabu") == derive_seed(1, 2, "tabu")


class TestCompare:
    def test_one_outcome_per_mapper(self, small_instance):
        clustered, system = small_instance
        outcomes = compare(clustered, system, seed=2)
        assert [o.mapper for o in outcomes] == ALL_MAPPERS
        bound = outcomes[0].lower_bound
        assert all(o.lower_bound == bound for o in outcomes)

    def test_subset_and_params(self, small_instance):
        clustered, system = small_instance
        outcomes = compare(
            clustered,
            system,
            mappers=["random", "tabu"],
            seed=2,
            mapper_params={"random": {"samples": 7}},
        )
        assert [o.mapper for o in outcomes] == ["random", "tabu"]
        assert outcomes[0].evaluations == 7

    def test_deterministic(self, small_instance):
        clustered, system = small_instance
        a = compare(clustered, system, mappers=["genetic"], seed=3)[0]
        b = compare(clustered, system, mappers=["genetic"], seed=3)[0]
        assert a.assignment == b.assignment


class TestWorkItemKeying:
    """Work items are keyed by (mapper, params, slot): repeated names are
    never deduplicated and every configuration gets its own seed stream."""

    def test_same_mapper_twice_with_different_params(self, small_instance):
        clustered, system = small_instance
        outcomes = compare(
            clustered,
            system,
            mappers=[("random", {"samples": 3}), ("random", {"samples": 8})],
            seed=4,
        )
        assert [o.mapper for o in outcomes] == ["random", "random"]
        # Both configurations really ran — nothing was collapsed.
        assert [o.evaluations for o in outcomes] == [3, 8]

    def test_duplicate_entries_are_independent_replicates(self, small_instance):
        clustered, system = small_instance
        outcomes = compare(clustered, system, mappers=["random", "random"], seed=5)
        assert len(outcomes) == 2
        # Distinct slots derive distinct seeds, so the two replicates draw
        # different random samples (regression: they used to be identical).
        assert (
            outcomes[0].extras["mean_total_time"]
            != outcomes[1].extras["mean_total_time"]
        )

    def test_entry_params_override_mapper_params(self, small_instance):
        clustered, system = small_instance
        outcomes = compare(
            clustered,
            system,
            mappers=["random", ("random", {"samples": 2})],
            seed=6,
            mapper_params={"random": {"samples": 9}},
        )
        assert [o.evaluations for o in outcomes] == [9, 2]

    def test_pinned_seed_derivation(self):
        # The exact per-item derivation is part of the reproducibility
        # contract; these values must never drift silently.
        assert derive_seed(1, 2, "tabu") == 14585938322687758437
        assert params_tag({"iterations": 9}) == 1595335967
        assert (
            derive_seed(1, 2, "tabu", params_tag({"iterations": 9}))
            == 17479814411434209772
        )
        assert derive_seed(5, 0, "annealing") == 14535853848083323465
        assert derive_seed(5, 1, "annealing") == 17661049032777161841

    def test_params_tag_is_order_insensitive_and_zero_for_empty(self):
        assert params_tag({}) == 0
        assert params_tag({"a": 1, "b": 2}) == params_tag({"b": 2, "a": 1})
        assert params_tag({"a": 1}) != params_tag({"a": 2})

    def test_params_change_the_derived_seed(self):
        base = derive_seed(0, 1, "tabu")
        assert base != derive_seed(0, 1, "tabu", params_tag({"iterations": 9}))
